"""Top-level simulation context: the ``hmc_sim_t`` analog.

:class:`HMCSim` owns everything a simulation needs — configuration,
backing memory, address map, devices, the CMC registry, tracing, and
the optional timing/power extensions — and exposes the object-oriented
equivalent of the HMC-Sim user API:

===========================  =====================================
HMC-Sim C function            HMCSim method
===========================  =====================================
``hmcsim_init``               constructor
``hmcsim_load_cmc``           :meth:`load_cmc`
``hmcsim_build_memrequest``   :meth:`build_memrequest`
``hmcsim_send``               :meth:`send`
``hmcsim_recv``               :meth:`recv`
``hmcsim_clock``              :meth:`clock`
``hmcsim_trace_handle``       :meth:`trace_handle`
``hmcsim_trace_level``        :meth:`trace_level`
``hmcsim_jtag_reg_read``      :meth:`jtag_reg_read`
``hmcsim_jtag_reg_write``     :meth:`jtag_reg_write`
``hmcsim_free``               :meth:`free`
===========================  =====================================

A thin functional facade with the original C names lives in
:mod:`repro.compat`.
"""

from __future__ import annotations

from dataclasses import replace as _cfg_replace
from typing import IO, Dict, List, Optional, Set, Tuple, Union

from repro.core.cmc import CMCOperation, CMCRegistry
from repro.core.loader import load_cmc as _load_cmc_plugin
from repro.errors import (
    HMCPacketError,
    HMCSimError,
    HMCStatus,
    SimDeadlockError,
    TagError,
)
from repro.faults.diagnostics import collect_deadlock_dump
from repro.hmc.addrmap import AddressMap
from repro.hmc.commands import (
    COMMAND_TABLE,
    CommandKind,
    command_info,
    hmc_rqst_t,
)
from repro.hmc.components import LinkFlow, MemoryModel, TopologyRouter
from repro.hmc.composition import build_link_flow, build_memory, build_topology
from repro.hmc.config import HMCConfig
from repro.hmc.device import Device
from repro.hmc.packet import RequestPacket, ResponsePacket
from repro.hmc.power import HMCPowerModel, PowerReport
from repro.hmc.timing import HMCTimingModel
from repro.hmc.trace import TraceLevel, Tracer

__all__ = ["HMCSim"]


class HMCSim:
    """One simulation context holding one or more HMC devices.

    Args:
        config: a validated :class:`HMCConfig`; alternatively pass the
            config fields as keyword arguments.
        timing: optional DRAM timing model (future-work extension).
        power: optional power model (future-work extension).
        flow: optional link-layer flow-control/retry model.  When
            omitted, the model selected by ``config.link_flow`` is
            built through the component registry (the default ``none``
            yields no model at all).
        faults: optional :class:`repro.faults.plan.FaultPlan`.  When
            given, the plan is built into a
            :class:`repro.faults.controller.FaultController` stored as
            ``self.faults`` and the datapath's fault hooks activate.
            With no plan (the default) every hook is a single
            ``is None`` test and the datapath is bit-identical to the
            fault-free baseline.
        strict_tags: when True (default), reject a send whose tag is
            already outstanding on the same device — catching the host
            bug the 11-bit TAG field cannot express.
        topology_kind: back-compat alias for ``config.topology``; when
            given it overrides the config's selection.
        **kwargs: forwarded to :class:`HMCConfig` when ``config`` is
            not given.

    Every pipeline stage — memory backend, per-device crossbars and
    vault schedulers, link flow, and the multi-cube topology — is
    constructed through the component registry from the selection
    fields of :class:`HMCConfig` (see ``docs/ARCHITECTURE.md``).
    """

    def __init__(
        self,
        config: Optional[HMCConfig] = None,
        *,
        timing: Optional[HMCTimingModel] = None,
        power: Optional[HMCPowerModel] = None,
        flow: Optional[LinkFlow] = None,
        faults: Optional[object] = None,
        strict_tags: bool = True,
        topology_kind: Optional[str] = None,
        **kwargs: object,
    ):
        if config is None:
            config = HMCConfig(**kwargs)  # type: ignore[arg-type]
        elif kwargs:
            raise HMCSimError("pass either a config object or field overrides, not both")
        if topology_kind is not None and topology_kind != config.topology:
            # Re-validates through HMCConfig, so an unknown kind fails
            # with the registry's known-keys message.
            config = _cfg_replace(config, topology=topology_kind)
        self.config = config
        self.timing = timing
        self.power = power
        self.flow: Optional[LinkFlow] = (
            flow if flow is not None else build_link_flow(config)
        )
        self.power_report = PowerReport()
        #: The built FaultController when a plan is attached, else None
        #: — every datapath hook gates on this exact attribute.
        self.faults = None
        self.backend: MemoryModel = build_memory(config)
        self.addrmap = AddressMap(config)
        self.tracer = Tracer()
        self.cmc = CMCRegistry()
        self.devices = [Device(d, config, self) for d in range(config.num_devs)]
        self.topology: TopologyRouter = build_topology(self)
        self._cycle = 0
        self._strict_tags = strict_tags
        #: Outstanding (cub, tag) pairs, packed as ``(cub << 11) | tag``
        #: — the tag field is 11 bits, so the packing is collision-free
        #: and avoids a tuple allocation per send/recv.
        self._outstanding: Set[int] = set()
        #: cmd code -> expects-a-response, invalidated on CMC load.
        self._expects_cache: Dict[int, bool] = {}
        self._initialized = True
        # Aggregate counters.
        self.sent_rqsts = 0
        self.send_stalls = 0
        self.recvd_rsps = 0
        if faults is not None:
            self.attach_faults(faults)

    # -- lifecycle ------------------------------------------------------------

    @property
    def cycle(self) -> int:
        """Current device cycle (number of completed :meth:`clock` calls)."""
        return self._cycle

    def free(self) -> None:
        """Release the context (``hmcsim_free``): further use is an error."""
        self._initialized = False
        self.backend.clear()
        self._outstanding.clear()

    def _check_init(self) -> None:
        if not self._initialized:
            raise HMCSimError("simulation context has been freed")

    # -- fault injection ---------------------------------------------------------

    def attach_faults(self, plan: object):
        """Build a :class:`repro.faults.plan.FaultPlan` against this
        context and activate its datapath hooks.

        Returns the resulting fault controller (also ``self.faults``).
        Duck-typed (``plan.build(self)``) so this core module depends
        only on the fault package's diagnostics, not its registry.
        """
        self.faults = plan.build(self)
        return self.faults

    def abandon_tag(self, cub: int, tag: int) -> bool:
        """Forget an outstanding tag so the host may retransmit it.

        Called by the watchdog's retransmission path: clears the
        strict-tag outstanding entry (the retransmitted packet re-adds
        it) and the fault layer's lost-tag record.  Returns True when
        the tag was actually outstanding.
        """
        key = (cub << 11) | tag
        was = key in self._outstanding
        self._outstanding.discard(key)
        if self.faults is not None:
            self.faults.clear_lost(cub, tag)
        return was

    # -- CMC registration (hmc_load_cmc) ----------------------------------------

    def load_cmc(self, source: Union[str, object]) -> CMCOperation:
        """Load a CMC plugin and register it in this context.

        The registration process of §IV.C.2: verify the context is
        initialized, load the library, resolve the three symbols, run
        ``cmc_register``, and install the operation.

        Raises:
            HMCSimError: if the context was freed.
            CMCLoadError: on any load/validation failure (nothing is
                left partially registered).
        """
        self._check_init()
        op = _load_cmc_plugin(source)
        self.cmc.register(op)
        # Registering an op can change whether its command code expects
        # a response (posted CMC ops), so drop the memoized answers.
        self._expects_cache.clear()
        return op

    # -- request construction (hmcsim_build_memrequest) ---------------------------

    def build_memrequest(
        self,
        rqst: hmc_rqst_t,
        addr: int,
        tag: int,
        *,
        cub: int = 0,
        data: bytes = b"",
    ) -> RequestPacket:
        """Build a request packet for any command, including loaded CMC ops.

        For CMC commands the request length comes from the operation's
        registration, so the op must be loaded first.

        Raises:
            HMCPacketError: malformed fields or payload size.
            CMCNotActiveError: a CMC command with no loaded operation.
        """
        self._check_init()
        # IntEnum members hash like their value: same KeyError contract
        # as command_info(rqst), minus the int() conversion per call.
        info = COMMAND_TABLE[rqst]
        rqst_flits: Optional[int] = None
        if info.kind is CommandKind.CMC:
            rqst_flits = self.cmc.get(rqst).registration.rqst_len
        return RequestPacket.build(
            rqst, addr, tag, cub=cub, data=data, rqst_flits=rqst_flits
        )

    # -- host traffic (hmcsim_send / hmcsim_recv) -----------------------------------

    def _expects_response(self, pkt: RequestPacket) -> bool:
        cmd = pkt.cmd
        cached = self._expects_cache.get(cmd)
        if cached is not None:
            return cached
        info = command_info(hmc_rqst_t(cmd))
        if info.kind is CommandKind.CMC:
            op = self.cmc.lookup(cmd)
            if op is None:
                # Unregistered CMC commands yield an RSP_ERROR response.
                # Not cached: the op may be registered later.
                return True
            expects = not op.registration.posted
        elif info.kind is CommandKind.FLOW:
            expects = False
        else:
            expects = not info.posted
        self._expects_cache[cmd] = expects
        return expects

    def send(self, pkt: RequestPacket, *, dev: int = 0, link: int = 0) -> HMCStatus:
        """Inject a request into a device link.

        Returns:
            ``HMCStatus.OK`` on acceptance or ``HMCStatus.STALL`` when
            the link's crossbar queue is full (retry next cycle) —
            the exact contract of ``hmcsim_send``.

        Raises:
            TagError: (strict mode) the tag is already outstanding on
                this device and the request expects a response.
        """
        self._check_init()
        if not 0 <= dev < self.config.num_devs:
            raise HMCSimError(f"no device {dev} in this context")
        expects = self._expects_cache.get(pkt.cmd)
        if expects is None:
            expects = self._expects_response(pkt)
        key = (pkt.cub << 11) | pkt.tag
        if self._strict_tags and expects and key in self._outstanding:
            raise TagError(
                f"tag {pkt.tag} is already outstanding on cube {pkt.cub}"
            )
        ok = self.devices[dev].send(link, pkt, self._cycle)
        if ok:
            self.sent_rqsts += 1
            if expects:
                self._outstanding.add(key)
            return HMCStatus.OK
        self.send_stalls += 1
        return HMCStatus.STALL

    def recv(self, *, dev: int = 0, link: int = 0) -> Optional[ResponsePacket]:
        """Collect the oldest retired response on a device link, or None."""
        self._check_init()
        rsp = self.devices[dev].links[link].recv()
        if rsp is not None:
            self.recvd_rsps += 1
            self._outstanding.discard((rsp.cub << 11) | rsp.tag)
            if self.config.check_crc:
                rsp.verify_crc()
        return rsp

    def recv_batch(self, *, dev: int = 0, link: int = 0) -> List[ResponsePacket]:
        """Collect *every* retired response on a device link, oldest first.

        Equivalent to calling :meth:`recv` until it returns ``None``,
        in one pass: the link's whole retire buffer moves out as a
        list, counters advance by the batch size, and every tag is
        discharged.  This is the batched host-side retirement path —
        one call per link per cycle instead of one call per response.
        """
        self._check_init()
        retired = self.devices[dev].links[link].retired
        if not retired:
            return []
        out = list(retired)
        retired.clear()
        self.recvd_rsps += len(out)
        discard = self._outstanding.discard
        check_crc = self.config.check_crc
        for rsp in out:
            discard((rsp.cub << 11) | rsp.tag)
            if check_crc:
                rsp.verify_crc()
        return out

    # -- time (hmcsim_clock) -----------------------------------------------------

    def clock(self, cycles: int = 1) -> int:
        """Advance the whole context by ``cycles`` device cycles.

        When nothing is in flight anywhere (no active vault, empty
        crossbars, no in-transit chain traffic, no scheduled replays)
        the remaining cycles are an idle fast-forward: ``_cycle``
        advances without running the per-device phases, which are all
        no-ops on empty structures.  The check runs per iteration, so
        work injected mid-``clock`` (none today — hosts inject between
        calls) would still be honoured cycle-accurately.
        """
        self._check_init()
        multi = self.config.num_devs > 1
        devices = self.devices
        for i in range(cycles):
            if self._quiescent():
                self._cycle += cycles - i
                break
            for device in devices:
                device.clock(self._cycle)
            if multi:
                self.topology.clock(self._cycle)
            self._cycle += 1
        return self._cycle

    def _quiescent(self) -> bool:
        """O(active) idle test used by :meth:`idle` and the fast-forward."""
        if self.topology.in_transit:
            return False
        flow = self.flow
        if flow is not None and flow.has_pending_replays():
            return False
        for device in self.devices:
            if device.busy():
                return False
        return True

    def drain(self, *, max_cycles: int = 100_000) -> int:
        """Clock until no request or response remains in flight.

        Returns the number of cycles consumed.

        Raises:
            SimDeadlockError: if the context does not drain within
                ``max_cycles`` (a livelock would otherwise spin
                forever).  The exception carries a
                :class:`repro.faults.diagnostics.DeadlockDump` naming
                every stuck tag, nonempty queue, and token balance.
        """
        start = self._cycle
        for _ in range(max_cycles):
            if self.idle():
                return self._cycle - start
            self.clock()
        raise SimDeadlockError(
            f"context did not drain within {max_cycles} cycles",
            dump=collect_deadlock_dump(self),
        )

    def idle(self) -> bool:
        """True when no packet is queued anywhere in the context.

        O(active): topology transit count, the flow model's public
        replay index (:meth:`LinkFlowModel.has_pending_replays`), and
        each device's O(1) :meth:`Device.busy` check — no scan over
        queues or vaults.
        """
        return self._quiescent()

    # -- tracing (hmcsim_trace_*) ---------------------------------------------------

    def trace_handle(self, handle: Optional[IO[str]]) -> None:
        """Attach a trace output stream (``hmcsim_trace_handle``)."""
        self.tracer.set_handle(handle)

    def trace_level(self, level: TraceLevel) -> None:
        """Set the trace category bitmask (``hmcsim_trace_level``)."""
        self.tracer.set_level(level)

    # -- JTAG (hmcsim_jtag_reg_read / write) -------------------------------------------

    def jtag_reg_read(self, dev: int, reg: int) -> int:
        """Read a device register through the simulated JTAG port."""
        self._check_init()
        return self.devices[dev].registers.read(reg)

    def jtag_reg_write(self, dev: int, reg: int, value: int) -> None:
        """Write a device register through the simulated JTAG port."""
        self._check_init()
        self.devices[dev].registers.write(reg, value)

    # -- direct memory access (host-side setup/verification) ------------------------

    def mem_read(self, addr: int, nbytes: int, *, dev: int = 0) -> bytes:
        """Read device-local memory directly (no packets, no cycles).

        Used for simulation setup/verification and by CMC plugins,
        which receive this context as their ``hmc`` argument.
        """
        self._check_init()
        return self.devices[dev].mem_read(addr, nbytes)

    def mem_write(self, addr: int, data: bytes, *, dev: int = 0) -> None:
        """Write device-local memory directly (no packets, no cycles)."""
        self._check_init()
        self.devices[dev].mem_write(addr, data)

    # -- statistics ---------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Aggregate context statistics (queues, counters, CMC, power)."""
        per_dev = {}
        for device in self.devices:
            per_dev[f"dev{device.dev}"] = {
                "queues": device.queue_stats(),
                "cmc_rejects": device.cmc_rejects,
                "cmc_failures": device.cmc_failures,
                "flow_packets": device.flow_packets,
                "forwarded_rqsts": device.forwarded_rqsts,
                "retired_rsps": device.retired_rsps,
            }
        out: Dict[str, object] = {
            "cycle": self._cycle,
            "sent_rqsts": self.sent_rqsts,
            "send_stalls": self.send_stalls,
            "recvd_rsps": self.recvd_rsps,
            "outstanding": len(self._outstanding),
            "cmc_ops": {
                op.op_name: op.executions for op in self.cmc.operations()
            },
            "energy_pj": self.power_report.total_pj if self.power else 0.0,
            "devices": per_dev,
        }
        if self.faults is not None:
            # Only present under an attached plan, so fault-free stats
            # output (and anything golden-pinned to it) is unchanged.
            out["faults"] = self.faults.counters()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HMCSim({self.config.describe()}, devs={self.config.num_devs}, "
            f"cycle={self._cycle}, cmc_ops={len(self.cmc)})"
        )
