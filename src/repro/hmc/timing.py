"""DRAM timing extension (paper §VII, Future Work).

The paper deliberately keeps timing data out of the HMC-Sim core to
stay implementation-agnostic, but names "more accurate timing and
power resolution" as the community's most-requested extension.  This
module supplies it as an *opt-in* model: when an
:class:`HMCTimingModel` is attached to a simulation, each request
holds its target bank busy for a number of device cycles derived from
row-buffer state, turning the zero-latency bank of the baseline model
into an open-page DRAM.

With no timing model attached the simulator reproduces the paper's
published behaviour exactly (bank busy time = 0, latency dominated by
queueing) — attaching one is the "No Simulation Perturbation"
requirement honoured: the default path is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hmc.commands import CommandInfo, CommandKind

__all__ = ["HMCTimingModel", "DEFAULT_TIMING"]


@dataclass(frozen=True)
class HMCTimingModel:
    """Open-page DRAM timing in device cycles.

    Attributes:
        t_cl: column access latency (row-buffer hit cost).
        t_rcd: row-to-column delay (added on a row miss).
        t_rp: precharge time (added when a different row was open).
        atomic_alu_cycles: extra logic-layer cycles for an atomic's
            read-modify-write beyond the column access.
        cmc_alu_cycles: extra logic-layer cycles for a CMC operation
            (plugins model arbitrarily complex logic; this is the
            default charge, overridable per-op via ``cmc_cycles``).
    """

    t_cl: int = 2
    t_rcd: int = 2
    t_rp: int = 2
    atomic_alu_cycles: int = 1
    cmc_alu_cycles: int = 1

    def access_cycles(self, open_row: int, row: int) -> int:
        """Bank busy cycles for a plain access given row-buffer state."""
        if open_row == row:
            return self.t_cl
        if open_row == -1:
            return self.t_rcd + self.t_cl
        return self.t_rp + self.t_rcd + self.t_cl

    def request_cycles(self, info: CommandInfo, open_row: int, row: int) -> int:
        """Total bank busy cycles for one request."""
        base = self.access_cycles(open_row, row)
        if info.kind in (CommandKind.ATOMIC, CommandKind.POSTED_ATOMIC):
            return base + self.atomic_alu_cycles
        if info.kind is CommandKind.CMC:
            return base + self.cmc_alu_cycles
        return base


#: A reasonable default parameterization for the extension benches.
DEFAULT_TIMING = HMCTimingModel()
