"""HMC Gen2 device-simulator substrate.

This subpackage is the Python reconstruction of the HMC-Sim 2.0 core
library: command set, packet formats, device organization (links,
quads, vaults, banks), queueing, tracing, registers, and the built-in
Gen2 atomic memory operations.  The Custom Memory Cube (CMC) plugin
infrastructure that the paper contributes lives in :mod:`repro.core`
and hooks into the vault request-processing path defined here.
"""

from repro.hmc.commands import CommandInfo, command_info, hmc_response_t, hmc_rqst_t
from repro.hmc.config import HMCConfig

__all__ = [
    "hmc_rqst_t",
    "hmc_response_t",
    "CommandInfo",
    "command_info",
    "HMCConfig",
    "HMCSim",
]


def __getattr__(name):
    # HMCSim is imported lazily: repro.hmc.sim depends on repro.core,
    # which itself imports repro.hmc.commands — a cycle if resolved at
    # package-import time.
    if name == "HMCSim":
        from repro.hmc.sim import HMCSim

        return HMCSim
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
