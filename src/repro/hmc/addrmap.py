"""Physical address decomposition (address → vault/bank/DRAM/row).

The HMC specification's *default address map* interleaves consecutive
max-block-size blocks across vaults, then across banks within a vault,
with the remaining high bits selecting the DRAM row.  The block size is
configurable (32..256 bytes) through ``hmcsim_util_set_max_blocksize``,
which is why the paper notes its mutex experiment sets a 64-byte max
block "which subsequently does not affect our respective simulation" —
a single 16-byte lock never spans blocks.

The mapping is bijective over the device capacity: every physical byte
address maps to exactly one (vault, bank, dram, row, offset) tuple and
back.  Property tests in ``tests/hmc/test_addrmap.py`` pin this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import HMCAddressError
from repro.hmc.config import HMCConfig

__all__ = ["AddressMap", "DecodedAddress"]


def _log2(n: int) -> int:
    b = n.bit_length() - 1
    if 1 << b != n:
        raise ValueError(f"{n} is not a power of two")
    return b


@dataclass(frozen=True)
class DecodedAddress:
    """One physical address decomposed into device coordinates."""

    addr: int
    dev: int
    quad: int
    vault: int
    bank: int
    dram: int
    row: int
    offset: int  # byte offset within the block


class AddressMap:
    """Default HMC address interleave for a given configuration.

    Bit layout, low to high (``addr_interleave="vault"``, the default)::

        [boff]  block offset     log2(bsize) bits
        [vault] vault select     log2(num_vaults) bits
        [bank]  bank select      log2(num_banks) bits
        [row]   row / remainder  everything up to the capacity boundary
        [dev]   cube select      log2(num_devs) bits (chained topologies)

    With ``addr_interleave="bank"`` the vault and bank fields swap:
    consecutive blocks sweep the banks of one vault before moving to
    the next vault — maximizing bank-level parallelism for streaming
    access at the cost of concentrating it on one vault controller
    (quantified by ``benchmarks/bench_ablation_interleave.py``).
    """

    def __init__(self, config: HMCConfig):
        self.config = config
        self._boff_bits = _log2(config.bsize)
        self._vault_bits = _log2(config.num_vaults)
        self._bank_bits = _log2(config.num_banks)
        self._vault_first = config.addr_interleave == "vault"
        self._dev_bits = max(0, (config.num_devs - 1).bit_length())
        cap_bits = _log2(config.capacity_bytes)
        self._row_lo = self._boff_bits + self._vault_bits + self._bank_bits
        self._row_bits = cap_bits - self._row_lo
        if self._row_bits < 0:
            raise HMCAddressError(
                f"capacity {config.capacity} GB too small for "
                f"{config.num_vaults} vaults x {config.num_banks} banks "
                f"at block size {config.bsize}"
            )
        # DRAM die select: the top bits of the row are attributed to the
        # stacked die, mirroring how HMC-Sim reports DRAM coordinates.
        self._dram_bits = min(self._row_bits, (config.num_drams - 1).bit_length())

    # -- forward ------------------------------------------------------------

    def decode(self, addr: int) -> DecodedAddress:
        """Decompose a physical byte address.

        Raises:
            HMCAddressError: if ``addr`` is outside the topology capacity.
        """
        cfg = self.config
        if addr < 0 or addr >= cfg.total_bytes:
            raise HMCAddressError(
                f"address {addr:#x} outside capacity "
                f"({cfg.num_devs} x {cfg.capacity} GB)"
            )
        a = addr
        offset = a & (cfg.bsize - 1)
        a >>= self._boff_bits
        if self._vault_first:
            vault = a & (cfg.num_vaults - 1)
            a >>= self._vault_bits
            bank = a & (cfg.num_banks - 1)
            a >>= self._bank_bits
        else:
            bank = a & (cfg.num_banks - 1)
            a >>= self._bank_bits
            vault = a & (cfg.num_vaults - 1)
            a >>= self._vault_bits
        row = a & ((1 << self._row_bits) - 1)
        a >>= self._row_bits
        dev = a
        dram = (row >> max(0, self._row_bits - self._dram_bits)) % cfg.num_drams
        return DecodedAddress(
            addr=addr,
            dev=dev,
            quad=cfg.quad_of_vault(vault),
            vault=vault,
            bank=bank,
            dram=dram,
            row=row,
            offset=offset,
        )

    # -- inverse ------------------------------------------------------------

    def encode(
        self, vault: int, bank: int, row: int, offset: int = 0, dev: int = 0
    ) -> int:
        """Compose a physical address from device coordinates.

        Raises:
            HMCAddressError: if any coordinate is out of range.
        """
        cfg = self.config
        if not 0 <= vault < cfg.num_vaults:
            raise HMCAddressError(f"vault {vault} out of range")
        if not 0 <= bank < cfg.num_banks:
            raise HMCAddressError(f"bank {bank} out of range")
        if not 0 <= row < (1 << self._row_bits):
            raise HMCAddressError(f"row {row} out of range")
        if not 0 <= offset < cfg.bsize:
            raise HMCAddressError(f"offset {offset} out of range")
        if not 0 <= dev < cfg.num_devs:
            raise HMCAddressError(f"dev {dev} out of range")
        a = dev
        a = (a << self._row_bits) | row
        if self._vault_first:
            a = (a << self._bank_bits) | bank
            a = (a << self._vault_bits) | vault
        else:
            a = (a << self._vault_bits) | vault
            a = (a << self._bank_bits) | bank
        a = (a << self._boff_bits) | offset
        return a

    def vault_of(self, addr: int) -> int:
        """Fast path: just the vault index of ``addr``."""
        lo = self._boff_bits if self._vault_first else self._boff_bits + self._bank_bits
        return (addr >> lo) & (self.config.num_vaults - 1)

    def bank_of(self, addr: int) -> int:
        """Fast path: just the bank index of ``addr``."""
        lo = self._boff_bits + self._vault_bits if self._vault_first else self._boff_bits
        return (addr >> lo) & (self.config.num_banks - 1)

    def row_of(self, addr: int) -> int:
        """Fast path: just the row coordinate of ``addr``.

        The row field sits above both the vault and bank selects
        regardless of interleave order, so it is a single shift+mask —
        no full :meth:`decode` needed on the bank-timing hot path.
        """
        return (addr >> self._row_lo) & ((1 << self._row_bits) - 1)

    def dev_of(self, addr: int) -> int:
        """Fast path: the cube (device) index of ``addr``."""
        return addr // self.config.capacity_bytes

    def routing_constants(self) -> Tuple[int, int, int, int, int, int]:
        """Bit-extraction constants for inlined routing on the send path.

        Returns ``(vault_lo, vault_mask, bank_lo, bank_mask, row_lo,
        row_mask)`` such that for a device-local address ``a``::

            vault = (a >> vault_lo) & vault_mask
            bank  = (a >> bank_lo)  & bank_mask
            row   = (a >> row_lo)   & row_mask

        reproduce :meth:`vault_of` / :meth:`bank_of` / :meth:`row_of`.
        """
        cfg = self.config
        if self._vault_first:
            vault_lo = self._boff_bits
            bank_lo = self._boff_bits + self._vault_bits
        else:
            bank_lo = self._boff_bits
            vault_lo = self._boff_bits + self._bank_bits
        return (
            vault_lo,
            cfg.num_vaults - 1,
            bank_lo,
            cfg.num_banks - 1,
            self._row_lo,
            (1 << self._row_bits) - 1,
        )

    @property
    def row_bits(self) -> int:
        """Number of row-address bits per bank."""
        return self._row_bits

    def coordinates(self, addr: int) -> Tuple[int, int, int, int]:
        """(dev, quad, vault, bank) of ``addr`` without full decode cost."""
        v = self.vault_of(addr)
        return (
            self.dev_of(addr),
            self.config.quad_of_vault(v),
            v,
            self.bank_of(addr),
        )
