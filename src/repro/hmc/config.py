"""Device configuration and validation for HMC Gen2 simulations.

Mirrors the argument set (and legality checks) of ``hmcsim_init`` in
HMC-Sim: number of devices, links, vaults, banks, DRAM dies, capacity,
and the two queue depths; plus the maximum block size set through
``hmcsim_util_set_max_blocksize``.

The paper's evaluation uses two configurations which are provided as
constructors: :meth:`HMCConfig.cfg_4link_4gb` and
:meth:`HMCConfig.cfg_8link_8gb` (max block size 64 bytes, request queue
depth 64, crossbar queue depth 128 — §V.B of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.errors import HMCConfigError
from repro.hmc.composition import SEAM_FIELDS, validate_selection

__all__ = ["HMCConfig", "NUM_QUADS"]

#: An HMC device always has four logic-layer quadrants.
NUM_QUADS = 4

_VALID_LINKS = (4, 8)
_VALID_CAPACITY_GB = (2, 4, 8)
_VALID_VAULTS = (16, 32)
_VALID_BANKS = (8, 16)
_VALID_DRAMS = (16, 20)
_VALID_BSIZE = (32, 64, 128, 256)
_MAX_DEVS = 8  # CUB field is 3 bits


@dataclass(frozen=True)
class HMCConfig:
    """Validated configuration for one simulation context.

    Attributes:
        num_devs: devices in the (possibly chained) topology, 1..8.
        num_links: host links per device (4 or 8).
        num_vaults: vaults per device (16 or 32).
        queue_depth: vault request queue depth in slots.
        num_banks: banks per vault (8 or 16).
        num_drams: DRAM dies per device (16 or 20).
        capacity: device capacity in GB (2, 4, or 8).
        xbar_depth: per-link crossbar queue depth in slots.
        bsize: maximum block size in bytes (32..256); controls the
            address-interleave boundary.
        check_crc: verify packet CRCs on receive (slower; default off,
            matching HMC-Sim's behaviour of trusting its own encoder).
        nonlocal_hop_cycles: extra crossbar cycles when a request enters
            on a link whose quad does not own the target vault.
        link_rsp_rate: response packets a link can retire to the host
            per device cycle (the serial link's finite bandwidth).
            Saturates per-link, so it is the source of the (small)
            4-link/8-link divergence past ~50 threads in the paper's
            Figures 5-7.
        vault_rsp_rate: response packets one vault can push into the
            crossbar per device cycle (the vault's response port).
            Link-count *independent*, so under the paper's single-
            lock hot spot it is the dominant bottleneck that makes
            the two configurations saturate at the same thread count,
            with the 8-link device ahead by only ~1-2%.
    """

    num_devs: int = 1
    num_links: int = 4
    num_vaults: int = 32
    queue_depth: int = 64
    num_banks: int = 16
    num_drams: int = 20
    capacity: int = 4
    xbar_depth: int = 128
    bsize: int = 64
    check_crc: bool = False
    nonlocal_hop_cycles: int = 0
    link_rsp_rate: int = 4
    vault_rsp_rate: int = 16
    #: Address interleave order above the block offset: "vault" (the
    #: spec default: consecutive blocks sweep vaults, then banks) or
    #: "bank" (consecutive blocks sweep banks within one vault first).
    addr_interleave: str = "vault"
    #: Component selections, one per pipeline seam.  Each value must
    #: name an implementation registered with the component registry
    #: (:mod:`repro.hmc.components`); the defaults reproduce the
    #: paper's pipeline bit-for-bit.
    xbar: str = "queued"
    vault_scheduler: str = "fifo"
    link_flow: str = "none"
    topology: str = "chain"
    memory: str = "paged"

    def __post_init__(self) -> None:
        if not 1 <= self.num_devs <= _MAX_DEVS:
            raise HMCConfigError(
                f"num_devs={self.num_devs}: the 3-bit CUB field supports 1..{_MAX_DEVS} devices"
            )
        if self.num_links not in _VALID_LINKS:
            raise HMCConfigError(f"num_links={self.num_links}: must be one of {_VALID_LINKS}")
        if self.num_vaults not in _VALID_VAULTS:
            raise HMCConfigError(f"num_vaults={self.num_vaults}: must be one of {_VALID_VAULTS}")
        if self.num_banks not in _VALID_BANKS:
            raise HMCConfigError(f"num_banks={self.num_banks}: must be one of {_VALID_BANKS}")
        if self.num_drams not in _VALID_DRAMS:
            raise HMCConfigError(f"num_drams={self.num_drams}: must be one of {_VALID_DRAMS}")
        if self.capacity not in _VALID_CAPACITY_GB:
            raise HMCConfigError(f"capacity={self.capacity}: must be one of {_VALID_CAPACITY_GB} (GB)")
        if self.queue_depth < 2:
            raise HMCConfigError(f"queue_depth={self.queue_depth}: minimum depth is 2")
        if self.xbar_depth < 2:
            raise HMCConfigError(f"xbar_depth={self.xbar_depth}: minimum depth is 2")
        if self.bsize not in _VALID_BSIZE:
            raise HMCConfigError(f"bsize={self.bsize}: must be one of {_VALID_BSIZE}")
        if self.nonlocal_hop_cycles < 0:
            raise HMCConfigError("nonlocal_hop_cycles must be >= 0")
        if self.link_rsp_rate < 1:
            raise HMCConfigError("link_rsp_rate must be >= 1")
        if self.vault_rsp_rate < 1:
            raise HMCConfigError("vault_rsp_rate must be >= 1")
        if self.addr_interleave not in ("vault", "bank"):
            raise HMCConfigError(
                f"addr_interleave={self.addr_interleave!r}: must be 'vault' or 'bank'"
            )
        for seam, field_name in SEAM_FIELDS.items():
            validate_selection(seam, getattr(self, field_name))

    def component_selection(self) -> Dict[str, str]:
        """The selected implementation key for every pipeline seam."""
        return {
            seam: getattr(self, field_name)
            for seam, field_name in SEAM_FIELDS.items()
        }

    # -- derived geometry ---------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        """Capacity of one device in bytes."""
        return self.capacity << 30

    @property
    def total_bytes(self) -> int:
        """Capacity of the whole topology in bytes."""
        return self.capacity_bytes * self.num_devs

    @property
    def vaults_per_quad(self) -> int:
        """Vaults owned by each of the four logic-layer quadrants."""
        return self.num_vaults // NUM_QUADS

    @property
    def links_per_quad(self) -> int:
        """Host links attached to each quadrant (1 for 4-link, 2 for 8-link)."""
        return self.num_links // NUM_QUADS

    def quad_of_vault(self, vault: int) -> int:
        """Quadrant that owns ``vault``."""
        return vault // self.vaults_per_quad

    def local_link_of_quad(self, quad: int) -> int:
        """The first (lowest-numbered) link attached to ``quad``."""
        return quad * self.links_per_quad

    def quad_of_link(self, link: int) -> int:
        """Quadrant a link is physically attached to."""
        return link // self.links_per_quad

    # -- the paper's two evaluation configurations --------------------------

    @classmethod
    def cfg_4link_4gb(cls, **overrides: object) -> "HMCConfig":
        """The paper's 4Link-4GB configuration (§V.B)."""
        cfg = cls(
            num_devs=1,
            num_links=4,
            num_vaults=32,
            queue_depth=64,
            num_banks=16,
            num_drams=20,
            capacity=4,
            xbar_depth=128,
            bsize=64,
        )
        return replace(cfg, **overrides) if overrides else cfg

    @classmethod
    def cfg_8link_8gb(cls, **overrides: object) -> "HMCConfig":
        """The paper's 8Link-8GB configuration (§V.B)."""
        cfg = cls(
            num_devs=1,
            num_links=8,
            num_vaults=32,
            queue_depth=64,
            num_banks=16,
            num_drams=20,
            capacity=8,
            xbar_depth=128,
            bsize=64,
        )
        return replace(cfg, **overrides) if overrides else cfg

    def describe(self) -> str:
        """Short human-readable configuration name, e.g. ``4Link-4GB``."""
        return f"{self.num_links}Link-{self.capacity}GB"

    def geometry(self) -> Tuple[int, int, int, int]:
        """(devices, links, vaults, banks) tuple for quick inspection."""
        return (self.num_devs, self.num_links, self.num_vaults, self.num_banks)
