"""Simulation checkpoint and restore.

Long simulations (the HMC-Sim user community runs kernels for millions
of cycles) benefit from snapshotting: capture the device-visible state
— memory image, registers, cycle counter, statistics — and later
restore it into a context built with the same configuration.

Scope: a checkpoint captures *quiesced* state.  Taking one while
packets are in flight raises, because generator-based host programs
cannot be serialized; call :meth:`HMCSim.drain` first.  The CMC
registry is intentionally **not** serialized (plugins are code, not
state — reload them after restore), matching how the C simulator
would reload shared libraries in a new process.

The on-disk format is a versioned, self-describing pickle-free
structure written with :mod:`json` + raw page blobs, so checkpoints
remain inspectable and robust across library versions.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path
from typing import Dict, Union

from repro.errors import HMCSimError
from repro.hmc.registers import HMC_REG
from repro.hmc.sim import HMCSim

__all__ = ["save_checkpoint", "restore_checkpoint", "CHECKPOINT_VERSION"]

CHECKPOINT_VERSION = 1


def _config_fingerprint(sim: HMCSim) -> Dict[str, object]:
    cfg = sim.config
    return {
        "num_devs": cfg.num_devs,
        "num_links": cfg.num_links,
        "num_vaults": cfg.num_vaults,
        "num_banks": cfg.num_banks,
        "capacity": cfg.capacity,
        "queue_depth": cfg.queue_depth,
        "xbar_depth": cfg.xbar_depth,
        "bsize": cfg.bsize,
        "addr_interleave": cfg.addr_interleave,
    }


def save_checkpoint(sim: HMCSim, path: Union[str, Path]) -> Path:
    """Write a checkpoint of a quiesced context.

    Raises:
        HMCSimError: if packets are still in flight (drain first).
    """
    if not sim.idle():
        raise HMCSimError(
            "cannot checkpoint with packets in flight — call drain() first"
        )
    pages = [
        {"base": base_addr, "data": base64.b64encode(content).decode("ascii")}
        for base_addr, content in sim.backend.iter_resident()
    ]
    registers = [dev.registers.snapshot() for dev in sim.devices]
    doc = {
        "version": CHECKPOINT_VERSION,
        "config": _config_fingerprint(sim),
        "cycle": sim.cycle,
        "counters": {
            "sent_rqsts": sim.sent_rqsts,
            "send_stalls": sim.send_stalls,
            "recvd_rsps": sim.recvd_rsps,
        },
        "pages": pages,
        "registers": registers,
    }
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(doc))
    return p


def restore_checkpoint(sim: HMCSim, path: Union[str, Path]) -> None:
    """Load a checkpoint into a freshly built context.

    The target context must have an equivalent configuration; CMC
    plugins must be re-loaded by the caller afterwards.

    Raises:
        HMCSimError: version or configuration mismatch, or a non-idle
            target context.
    """
    if not sim.idle():
        raise HMCSimError("cannot restore into a context with packets in flight")
    doc = json.loads(Path(path).read_text())
    if doc.get("version") != CHECKPOINT_VERSION:
        raise HMCSimError(
            f"checkpoint version {doc.get('version')} is not supported "
            f"(expected {CHECKPOINT_VERSION})"
        )
    want = _config_fingerprint(sim)
    if doc["config"] != want:
        raise HMCSimError(
            f"checkpoint configuration {doc['config']} does not match the "
            f"target context {want}"
        )
    sim.backend.clear()
    for page in doc["pages"]:
        sim.backend.write(page["base"], base64.b64decode(page["data"]))
    for dev, snapshot in zip(sim.devices, doc["registers"]):
        for name, value in snapshot.items():
            if name in ("FEAT", "RVID"):
                continue  # read-only; derived from the configuration
            dev.registers.write(HMC_REG[name], value)
    sim._cycle = doc["cycle"]
    counters = doc["counters"]
    sim.sent_rqsts = counters["sent_rqsts"]
    sim.send_stalls = counters["send_stalls"]
    sim.recvd_rsps = counters["recvd_rsps"]
