"""Simulation checkpoint and restore.

Long simulations (the HMC-Sim user community runs kernels for millions
of cycles) benefit from snapshotting: capture the device-visible state
— memory image, registers, cycle counter, statistics — and later
restore it into a context built with the same configuration.

Scope: a checkpoint captures state while every *device* is quiesced
(no request or response inside a crossbar, vault queue, or retry
buffer) — generator-based host programs cannot be serialized, and
device-internal Flights carry live references.  Packets travelling
*between* cubes are different: the topology's delay lines hold plain
packets plus integer metadata, so a chained simulation can be
checkpointed mid-flight and the in-transit packets are rebuilt on
restore with their routing recomputed from the packet itself.  The CMC
registry is intentionally **not** serialized (plugins are code, not
state — reload them after restore), matching how the C simulator
would reload shared libraries in a new process.

The on-disk format is a versioned, self-describing pickle-free
structure written with :mod:`json` + raw page blobs, so checkpoints
remain inspectable and robust across library versions.  Version 2
added the component-selection fields to the configuration fingerprint
(a checkpoint taken under one pipeline composition must not restore
into another) and the in-transit topology state.  Version 3 added the
fault subsystem: the host's outstanding-tag set, the fault
controller's counters and lost-tag set, and (via the ``watchdog=``
parameter) the host watchdog's armed tags, deadlines, and attempt
history — so a faulty run can checkpoint with a response destroyed
and mid-retransmission, and resume bit-identically.  Version 2 files
still restore (their fault state defaults to empty); fault draws are
stateless splitmix64 hashes of (seed, cycle, coordinates), so no RNG
state needs capturing.  Version 4 adds the differential oracle: pass
the reference model via the duck-typed ``oracle=`` parameter (any
object with ``snapshot_state()``/``restore_state(doc)`` — this module
never imports :mod:`repro.oracle`, preserving the layering) and a
fuzz-farm burn-down can freeze mid-trace with the oracle's memory
image and register files captured alongside the device state.
Version 3 files still restore; they simply carry no oracle document.
"""

from __future__ import annotations

import base64
import heapq
import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import HMCSimError
from repro.faults.watchdog import ArmedTag, TagWatchdog
from repro.hmc.packet import RequestPacket, ResponsePacket
from repro.hmc.registers import HMC_REG
from repro.hmc.sim import HMCSim
from repro.hmc.topology import Topology

__all__ = ["save_checkpoint", "restore_checkpoint", "CHECKPOINT_VERSION"]

CHECKPOINT_VERSION = 4

#: Versions restore_checkpoint accepts.  Version 2 predates the fault
#: subsystem; its files carry no outstanding/fault/watchdog state and
#: restore with those defaults (empty).  Version 3 predates the
#: oracle document; its files restore with no oracle state.
_SUPPORTED_VERSIONS = (2, 3, 4)


def _fingerprint_diff(
    want: Dict[str, object], got: Dict[str, object]
) -> str:
    """Name exactly the fingerprint fields that differ.

    The serve layer surfaces checkpoint rejections verbatim to remote
    clients, so "those two dicts differ somewhere" is not a usable
    diagnostic — the message must say *which* field diverged and what
    each side holds.
    """
    diffs = [
        f"{key}: checkpoint has {got.get(key, '<absent>')!r}, "
        f"target has {want.get(key, '<absent>')!r}"
        for key in sorted(set(want) | set(got))
        if want.get(key) != got.get(key)
    ]
    return "; ".join(diffs)


def _config_fingerprint(sim: HMCSim) -> Dict[str, object]:
    cfg = sim.config
    fp: Dict[str, object] = {
        "num_devs": cfg.num_devs,
        "num_links": cfg.num_links,
        "num_vaults": cfg.num_vaults,
        "num_banks": cfg.num_banks,
        "capacity": cfg.capacity,
        "queue_depth": cfg.queue_depth,
        "xbar_depth": cfg.xbar_depth,
        "bsize": cfg.bsize,
        "addr_interleave": cfg.addr_interleave,
    }
    # The pipeline composition is part of the fingerprint: restoring a
    # checkpoint into a context with a different crossbar, scheduler,
    # flow, topology, or memory model would silently change semantics.
    fp.update(cfg.component_selection())
    return fp


# -- packet (de)serialization --------------------------------------------------

_RQST_FIELDS = ("cmd", "tag", "addr", "cub", "rrp", "frp", "seq", "pb", "slid", "rtc")
_RSP_FIELDS = (
    "cmd",
    "tag",
    "cub",
    "slid",
    "rrp",
    "frp",
    "seq",
    "dinv",
    "errstat",
    "rtc",
    "retire_cycle",
    "inject_cycle",
    "origin_dev",
    "origin_link",
)


def _encode_rqst(pkt: RequestPacket) -> Dict[str, object]:
    doc: Dict[str, object] = {f: getattr(pkt, f) for f in _RQST_FIELDS}
    doc["data"] = base64.b64encode(pkt.data).decode("ascii")
    return doc


def _decode_rqst(doc: Dict[str, object]) -> RequestPacket:
    return RequestPacket(
        data=base64.b64decode(doc["data"]),
        **{f: doc[f] for f in _RQST_FIELDS},
    )


def _encode_rsp(rsp: ResponsePacket) -> Dict[str, object]:
    doc: Dict[str, object] = {f: getattr(rsp, f) for f in _RSP_FIELDS}
    doc["data"] = base64.b64encode(rsp.data).decode("ascii")
    return doc


def _decode_rsp(doc: Dict[str, object]) -> ResponsePacket:
    return ResponsePacket(
        data=base64.b64decode(doc["data"]),
        **{f: doc[f] for f in _RSP_FIELDS},
    )


# -- topology wire (de)serialization -------------------------------------------


def _encode_topology(sim: HMCSim) -> Dict[str, object]:
    topo = sim.topology
    doc: Dict[str, object] = {
        "forwarded_requests": getattr(topo, "forwarded_requests", 0),
        "forwarded_responses": getattr(topo, "forwarded_responses", 0),
        "rqst_wire": [],
        "rsp_wire": [],
    }
    if not isinstance(topo, Topology):
        # A third-party router's delay-line layout is unknown; only a
        # drained one can be captured.
        if topo.in_transit:
            raise HMCSimError(
                "cannot checkpoint in-transit packets of a custom topology "
                "router — call drain() first"
            )
        return doc
    doc["rqst_wire"] = [
        {
            "ready": ready,
            "dev": dev,
            "link": link,
            "pkt": _encode_rqst(flight.pkt),
            # Flight metadata that cannot be recomputed from the packet;
            # routing (vault/bank/quad/row) is rederived on restore.
            "src_link": flight.src_link,
            "inject_cycle": flight.inject_cycle,
            "hop_delay": flight.hop_delay,
            "origin_dev": flight.origin_dev,
            "link_seq": flight.link_seq,
            "service_until": flight.service_until,
            "chain_hops": flight.chain_hops,
        }
        for ready, dev, link, flight in topo._rqst_wire
    ]
    doc["rsp_wire"] = [
        {"ready": ready, "dev": dev, "rsp": _encode_rsp(rsp)}
        for ready, dev, rsp in topo._rsp_wire
    ]
    return doc


def _restore_topology(sim: HMCSim, doc: Dict[str, object]) -> None:
    topo = sim.topology
    if not isinstance(topo, Topology):
        if doc["rqst_wire"] or doc["rsp_wire"]:
            raise HMCSimError(
                "checkpoint holds in-transit packets but the target context "
                "uses a custom topology router that cannot receive them"
            )
        return
    # Routing constants are identical across same-config devices, so
    # any device can rebuild the Flight.
    router = sim.devices[0]
    rqst_wire: List = []
    for entry in doc["rqst_wire"]:
        flight = router.route_flight(
            _decode_rqst(entry["pkt"]),
            entry["src_link"],
            entry["inject_cycle"],
            hop_delay=entry["hop_delay"],
            origin_dev=entry["origin_dev"],
            link_seq=entry["link_seq"],
            service_until=entry["service_until"],
            chain_hops=entry["chain_hops"],
        )
        rqst_wire.append((entry["ready"], entry["dev"], entry["link"], flight))
    topo._rqst_wire = rqst_wire
    topo._rsp_wire = [
        (entry["ready"], entry["dev"], _decode_rsp(entry["rsp"]))
        for entry in doc["rsp_wire"]
    ]
    topo.forwarded_requests = doc["forwarded_requests"]
    topo.forwarded_responses = doc["forwarded_responses"]


# -- fault subsystem (de)serialization ------------------------------------------


def _encode_faults(sim: HMCSim) -> object:
    ctl = sim.faults
    if ctl is None:
        return None
    return {
        # The plan fingerprint: restoring fault state into a context
        # with different injectors (or a different seed, which drives
        # every stateless draw) would silently change the fault stream.
        "plan": ctl.plan.describe(),
        "seed": ctl.plan.seed,
        "counts": dict(sorted(ctl.counts.items())),
        "lost_tags": sorted(list(t) for t in ctl.lost_tags),
    }


def _restore_faults(sim: HMCSim, doc: object) -> None:
    ctl = sim.faults
    if doc is None:
        # Fault-free checkpoint (or version 2): a fresh controller on
        # the target side keeps its empty state.
        return
    if ctl is None:
        raise HMCSimError(
            "checkpoint carries fault-controller state but the target "
            "context has no fault plan attached"
        )
    if (ctl.plan.describe(), ctl.plan.seed) != (doc["plan"], doc["seed"]):
        diffs = []
        if ctl.plan.describe() != doc["plan"]:
            diffs.append(
                f"plan: checkpoint has [{doc['plan']}], "
                f"target has [{ctl.plan.describe()}]"
            )
        if ctl.plan.seed != doc["seed"]:
            diffs.append(
                f"seed: checkpoint has {doc['seed']:#x}, "
                f"target has {ctl.plan.seed:#x}"
            )
        raise HMCSimError(
            "checkpoint fault plan does not match the target plan: "
            + "; ".join(diffs)
        )
    ctl.counts = dict(doc["counts"])
    ctl.lost_tags = {(cub, tag) for cub, tag in doc["lost_tags"]}


def _encode_watchdog(watchdog: TagWatchdog) -> Dict[str, object]:
    return {
        "timeout": watchdog.timeout,
        "max_retries": watchdog.max_retries,
        "backoff": watchdog.backoff,
        "serial": watchdog._serial,
        "timeouts": watchdog.timeouts,
        "retransmits": watchdog.retransmits,
        "attempts": sorted(watchdog._attempts.items()),
        "armed": [
            {
                "tag": e.tag,
                "packet": _encode_rqst(e.packet),
                "dev": e.dev,
                "link": e.link,
                "attempts": e.attempts,
                "deadline": e.deadline,
                "serial": e.serial,
            }
            for _tag, e in sorted(watchdog._armed.items())
        ],
    }


def _restore_watchdog(watchdog: TagWatchdog, doc: Dict[str, object]) -> None:
    params = (doc["timeout"], doc["max_retries"], doc["backoff"])
    have = (watchdog.timeout, watchdog.max_retries, watchdog.backoff)
    if params != have:
        raise HMCSimError(
            f"checkpoint watchdog parameters {params} do not match the "
            f"target watchdog {have}"
        )
    watchdog._serial = doc["serial"]
    watchdog.timeouts = doc["timeouts"]
    watchdog.retransmits = doc["retransmits"]
    watchdog._attempts = {tag: n for tag, n in doc["attempts"]}
    watchdog._armed = {}
    heap: List = []
    for entry in doc["armed"]:
        armed = ArmedTag(
            tag=entry["tag"],
            packet=_decode_rqst(entry["packet"]),
            dev=entry["dev"],
            link=entry["link"],
            attempts=entry["attempts"],
            deadline=entry["deadline"],
            serial=entry["serial"],
        )
        watchdog._armed[armed.tag] = armed
        heap.append((armed.deadline, armed.serial, armed.tag))
    # Stale heap entries (disarmed/re-armed) need not be reproduced:
    # lazy invalidation means the heap only has to cover live tags.
    heapq.heapify(heap)
    watchdog._heap = heap


def _check_devices_quiesced(sim: HMCSim, action: str) -> None:
    """Devices (and the link layer) must hold nothing; packets on the
    inter-cube wire are fine — they serialize."""
    for device in sim.devices:
        if device.busy():
            raise HMCSimError(
                f"cannot {action} with packets in flight inside a device — "
                "call drain() first"
            )
    flow = sim.flow
    if flow is not None and flow.has_pending_replays():
        raise HMCSimError(
            f"cannot {action} with link replays in flight — call drain() first"
        )


def save_checkpoint(
    sim: HMCSim,
    path: Union[str, Path],
    *,
    watchdog: Optional[TagWatchdog] = None,
    oracle: Optional[object] = None,
) -> Path:
    """Write a checkpoint of a device-quiesced context.

    Packets in transit between cubes are captured; packets inside a
    device are not serializable.  A device-quiesced context may still
    owe responses — a fault destroyed them and the watchdog is waiting
    to retransmit — so the host's outstanding-tag set, the fault
    controller's counters and lost tags, and (when ``watchdog`` is
    passed) the watchdog's armed state are all captured.  Pass a
    differential reference model via ``oracle=`` (anything with a
    ``snapshot_state()`` method) to embed its memory image and
    registers as well.

    Raises:
        HMCSimError: if any device holds packets in flight (drain first).
    """
    _check_devices_quiesced(sim, "checkpoint")
    pages = [
        {"base": base_addr, "data": base64.b64encode(content).decode("ascii")}
        for base_addr, content in sim.backend.iter_resident()
    ]
    registers = [dev.registers.snapshot() for dev in sim.devices]
    # CMC operations: code is never serialized, but the *identity* of
    # each loaded plugin (its importable source) and its execution
    # counter are — so a restored context reports the same cumulative
    # cmc_executions a warm uninterrupted context would.
    cmc_ops = [
        {"source": op.source, "cmd": op.cmd, "executions": op.executions}
        for op in sim.cmc.operations()
    ]
    doc = {
        "version": CHECKPOINT_VERSION,
        "config": _config_fingerprint(sim),
        "cycle": sim.cycle,
        "counters": {
            "sent_rqsts": sim.sent_rqsts,
            "send_stalls": sim.send_stalls,
            "recvd_rsps": sim.recvd_rsps,
        },
        "pages": pages,
        "registers": registers,
        "topology": _encode_topology(sim),
        "outstanding": sorted(sim._outstanding),
        "cmc": cmc_ops,
        "faults": _encode_faults(sim),
        "watchdog": None if watchdog is None else _encode_watchdog(watchdog),
        "oracle": None if oracle is None else oracle.snapshot_state(),
    }
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(doc))
    return p


def restore_checkpoint(
    sim: HMCSim,
    path: Union[str, Path],
    *,
    watchdog: Optional[TagWatchdog] = None,
    oracle: Optional[object] = None,
) -> None:
    """Load a checkpoint into a freshly built context.

    The target context must have an equivalent configuration —
    including the same component selection for every pipeline seam,
    and the same fault plan when the checkpoint carries fault state.
    CMC plugins recorded with an importable source are re-loaded
    automatically (with their execution counters restored); inline
    registrations must be re-registered by the caller *before*
    restoring, and checkpoints from before the ``cmc`` capture leave
    plugin reloading to the caller entirely.  When
    the checkpoint holds watchdog state, pass the (identically
    parameterized) target watchdog via ``watchdog=``; when it holds an
    oracle document, pass the target reference model (anything with
    ``restore_state(doc)``) via ``oracle=``.

    Raises:
        HMCSimError: version, configuration, fault-plan, or watchdog
            mismatch, or a non-idle target context.
    """
    _check_devices_quiesced(sim, "restore")
    if sim.topology.in_transit:
        raise HMCSimError(
            "cannot restore into a context with packets in flight between cubes"
        )
    doc = json.loads(Path(path).read_text())
    if doc.get("version") not in _SUPPORTED_VERSIONS:
        supported = ", ".join(str(v) for v in _SUPPORTED_VERSIONS)
        raise HMCSimError(
            f"checkpoint {Path(path).name} has version {doc.get('version')!r}, "
            f"which this build does not support (supported versions: "
            f"{supported}; current save version: {CHECKPOINT_VERSION})"
        )
    want = _config_fingerprint(sim)
    if doc["config"] != want:
        raise HMCSimError(
            "checkpoint configuration does not match the target context: "
            + _fingerprint_diff(want, doc["config"])
        )
    sim.backend.clear()
    for page in doc["pages"]:
        sim.backend.write(page["base"], base64.b64decode(page["data"]))
    for dev, snapshot in zip(sim.devices, doc["registers"]):
        for name, value in snapshot.items():
            if name in ("FEAT", "RVID"):
                continue  # read-only; derived from the configuration
            dev.registers.write(HMC_REG[name], value)
    sim._cycle = doc["cycle"]
    counters = doc["counters"]
    sim.sent_rqsts = counters["sent_rqsts"]
    sim.send_stalls = counters["send_stalls"]
    sim.recvd_rsps = counters["recvd_rsps"]
    _restore_topology(sim, doc["topology"])
    sim._outstanding = set(doc.get("outstanding", ()))
    for entry in doc.get("cmc", ()):
        op = sim.cmc.lookup(entry["cmd"])
        if op is None:
            if entry["source"] == "<inline>":
                raise HMCSimError(
                    f"checkpoint carries CMC operation for command code "
                    f"{entry['cmd']} registered inline — re-register it "
                    f"on the target context before restoring"
                )
            sim.load_cmc(entry["source"])
            op = sim.cmc.get(entry["cmd"])
        op.executions = entry["executions"]
    _restore_faults(sim, doc.get("faults"))
    wd_doc = doc.get("watchdog")
    if wd_doc is not None:
        if watchdog is None:
            raise HMCSimError(
                "checkpoint carries watchdog state — pass the target "
                "watchdog via watchdog="
            )
        _restore_watchdog(watchdog, wd_doc)
    oracle_doc = doc.get("oracle")
    if oracle_doc is not None:
        if oracle is None:
            raise HMCSimError(
                "checkpoint carries oracle state — pass the target "
                "reference model via oracle="
            )
        oracle.restore_state(oracle_doc)
