"""HMC 2.0/2.1 packet formats: request/response head & tail encode/decode.

A packet is a sequence of FLITs (128 bits each), represented in the
simulator — exactly as in HMC-Sim — as a flat list of 64-bit words:
``[head, data0, data1, ..., tail]``.  A packet of *L* FLITs is ``2*L``
words; the head is the low 64 bits of the first FLIT and the tail the
high 64 bits of the last FLIT, leaving ``(L-1) * 16`` bytes of data
payload in between.

Field layout (HMC-Sim 2.0 conventions for the 2.0/2.1 specification):

Request head::

    [6:0]   CMD   request command
    [11:7]  LNG   packet length in FLITs (includes head+tail)
    [22:12] TAG   host-assigned tag echoed in the response
    [57:24] ADRS  34-bit target byte address
    [60:58] RES   reserved
    [63:61] CUB   target cube id (device routing)

Request tail::

    [8:0]   RRP   return retry pointer
    [17:9]  FRP   forward retry pointer
    [20:18] SEQ   sequence number
    [21]    Pb    poison bit
    [24:22] SLID  source link id
    [28:25] RES   reserved
    [31:29] RTC   return token count
    [63:32] CRC   Koopman CRC-32 over the packet

Response head::

    [6:0]   CMD   response command
    [11:7]  LNG   packet length in FLITs
    [22:12] TAG   echoed request tag
    [25:23] SLID  source link id (for host-side routing)
    [60:26] RES   reserved
    [63:61] CUB   originating cube id

Response tail::

    [8:0]   RRP
    [17:9]  FRP
    [20:18] SEQ
    [21]    DINV  data-invalid (CRC failure) flag
    [28:22] ERRSTAT  7-bit error status
    [31:29] RTC
    [63:32] CRC
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

from repro.errors import HMCPacketError
from repro.hmc import crc as _crc
from repro.hmc.commands import (
    FLIT_BYTES,
    MAX_PACKET_FLITS,
    CommandKind,
    command_for_code,
    command_info,
    hmc_response_t,
    hmc_rqst_t,
)

__all__ = [
    "RequestPacket",
    "ResponsePacket",
    "pack_data",
    "pack_data_cached",
    "unpack_data",
    "field_get",
    "field_set",
    "MAX_TAG",
    "MAX_CUB",
    "ADDR_MASK",
]

_U64 = (1 << 64) - 1

#: Largest encodable tag (11-bit TAG field).
MAX_TAG = (1 << 11) - 1
#: Largest encodable cube id (3-bit CUB field).
MAX_CUB = (1 << 3) - 1
#: Mask for the 34-bit ADRS field.
ADDR_MASK = (1 << 34) - 1


def field_get(word: int, lo: int, width: int) -> int:
    """Extract ``width`` bits starting at bit ``lo`` from a 64-bit word."""
    return (word >> lo) & ((1 << width) - 1)


def field_set(word: int, lo: int, width: int, value: int) -> int:
    """Return ``word`` with ``width`` bits at ``lo`` replaced by ``value``.

    Raises:
        HMCPacketError: if ``value`` does not fit in ``width`` bits.
    """
    if value < 0 or value >= (1 << width):
        raise HMCPacketError(
            f"value {value:#x} does not fit in a {width}-bit packet field"
        )
    mask = ((1 << width) - 1) << lo
    return (word & ~mask & _U64) | (value << lo)


def pack_data(data: bytes) -> List[int]:
    """Pack a byte payload into little-endian 64-bit data words.

    Raises:
        HMCPacketError: if the payload length is not a multiple of 8.
    """
    if len(data) % 8 != 0:
        raise HMCPacketError(f"payload length {len(data)} is not 64-bit aligned")
    return [
        int.from_bytes(data[i : i + 8], "little") for i in range(0, len(data), 8)
    ]


def unpack_data(words: Sequence[int]) -> bytes:
    """Inverse of :func:`pack_data`."""
    return b"".join((w & _U64).to_bytes(8, "little") for w in words)


@lru_cache(maxsize=2048)
def pack_data_cached(data: bytes) -> Tuple[int, ...]:
    """Memoized :func:`pack_data` returning an immutable word tuple.

    Spin-heavy workloads (the paper's mutex sweep) rebuild identical
    payloads millions of times; the cache makes the per-request payload
    split free after the first occurrence.
    """
    return tuple(pack_data(data))


# ---------------------------------------------------------------------------
# Memoized wire-form builders.
#
# A packet's wire form (head word, data words, CRC-carrying tail word) is a
# pure function of its wire fields, so it is computed once per distinct
# field combination and shared.  The builders are keyed on *every* wire
# field — mutating a packet simply selects a different cache line — and the
# Koopman CRC-32 is computed exactly once per combination, which is what
# turns ``check_crc`` verification and CMC head/tail materialization from a
# per-packet cost into a cache hit.  field_set is retained so out-of-range
# field values raise the same HMCPacketError as the unmemoized encoders
# (exceptions are never cached by lru_cache).
# ---------------------------------------------------------------------------


@lru_cache(maxsize=4096)
def _rqst_wire(
    cmd: int,
    tag: int,
    addr: int,
    cub: int,
    data: bytes,
    rrp: int,
    frp: int,
    seq: int,
    pb: int,
    slid: int,
    rtc: int,
) -> Tuple[int, Tuple[int, ...], int]:
    lng = 1 + len(data) // FLIT_BYTES
    head = 0
    head = field_set(head, 0, 7, cmd)
    head = field_set(head, 7, 5, lng)
    head = field_set(head, 12, 11, tag)
    head = field_set(head, 24, 34, addr & ADDR_MASK)
    head = field_set(head, 61, 3, cub)
    tail = 0
    tail = field_set(tail, 0, 9, rrp)
    tail = field_set(tail, 9, 9, frp)
    tail = field_set(tail, 18, 3, seq)
    tail = field_set(tail, 21, 1, pb)
    tail = field_set(tail, 22, 3, slid)
    tail = field_set(tail, 29, 3, rtc)
    words = pack_data(data)
    crc = _crc.packet_crc([head] + words + [tail])
    return head, tuple(words), field_set(tail, 32, 32, crc)


@lru_cache(maxsize=4096)
def _rsp_wire(
    cmd: int,
    tag: int,
    cub: int,
    slid: int,
    data: bytes,
    rrp: int,
    frp: int,
    seq: int,
    dinv: int,
    errstat: int,
    rtc: int,
) -> Tuple[int, Tuple[int, ...], int]:
    lng = 1 + len(data) // FLIT_BYTES
    head = 0
    head = field_set(head, 0, 7, cmd)
    head = field_set(head, 7, 5, lng)
    head = field_set(head, 12, 11, tag)
    head = field_set(head, 23, 3, slid)
    head = field_set(head, 61, 3, cub)
    tail = 0
    tail = field_set(tail, 0, 9, rrp)
    tail = field_set(tail, 9, 9, frp)
    tail = field_set(tail, 18, 3, seq)
    tail = field_set(tail, 21, 1, dinv)
    tail = field_set(tail, 22, 7, errstat)
    tail = field_set(tail, 29, 3, rtc)
    words = pack_data(data)
    crc = _crc.packet_crc([head] + words + [tail])
    return head, tuple(words), field_set(tail, 32, 32, crc)


@dataclass(slots=True)
class RequestPacket:
    """A decoded HMC request packet.

    ``data`` is the raw payload (``(lng-1)*16`` bytes).  Tail link-layer
    fields default to zero; the simulator populates ``slid`` on send so
    responses can be routed back to the originating link.
    """

    cmd: int
    tag: int
    addr: int
    cub: int = 0
    data: bytes = b""
    rrp: int = 0
    frp: int = 0
    seq: int = 0
    pb: int = 0
    slid: int = 0
    rtc: int = 0

    @classmethod
    def build(
        cls,
        rqst: hmc_rqst_t,
        addr: int,
        tag: int,
        *,
        cub: int = 0,
        data: bytes = b"",
        rqst_flits: Optional[int] = None,
    ) -> "RequestPacket":
        """Build a request for a known command, validating payload size.

        For specification-defined commands the packet length comes from
        the command table and ``data`` must match it exactly.  For CMC
        commands the caller (normally the CMC registry) supplies
        ``rqst_flits``; the payload is zero-padded up to the registered
        length.

        Raises:
            HMCPacketError: on size/field violations.
        """
        info = command_info(rqst)
        if info.kind is CommandKind.CMC:
            if rqst_flits is None:
                raise HMCPacketError(
                    f"{rqst.name}: CMC requests need an explicit rqst_flits "
                    "(use HMCSim.build_memrequest after loading the CMC op)"
                )
            flits = rqst_flits
        else:
            flits = info.rqst_flits
            assert flits is not None
        if not 1 <= flits <= MAX_PACKET_FLITS:
            raise HMCPacketError(f"request length {flits} FLITs out of range 1..17")
        want = (flits - 1) * FLIT_BYTES
        if info.kind is CommandKind.CMC and len(data) < want:
            data = data + bytes(want - len(data))
        if len(data) != want:
            raise HMCPacketError(
                f"{rqst.name}: payload is {len(data)} bytes, "
                f"a {flits}-FLIT request carries exactly {want}"
            )
        if not 0 <= tag <= MAX_TAG:
            raise HMCPacketError(f"tag {tag} outside 11-bit tag space")
        if not 0 <= cub <= MAX_CUB:
            raise HMCPacketError(f"cub {cub} outside 3-bit cube space")
        if addr < 0 or addr > ADDR_MASK:
            raise HMCPacketError(f"address {addr:#x} outside 34-bit ADRS space")
        return cls(cmd=int(rqst), tag=tag, addr=addr, cub=cub, data=data)

    # -- wire form ---------------------------------------------------------

    @property
    def lng(self) -> int:
        """Packet length in FLITs."""
        return 1 + len(self.data) // FLIT_BYTES

    @property
    def rqst(self) -> hmc_rqst_t:
        """The request enum member for this packet's command code."""
        return hmc_rqst_t(self.cmd)

    def _wire(self) -> Tuple[int, Tuple[int, ...], int]:
        """(head, data words, tail) from the memoized wire builder."""
        return _rqst_wire(
            self.cmd,
            self.tag,
            self.addr,
            self.cub,
            self.data,
            self.rrp,
            self.frp,
            self.seq,
            self.pb,
            self.slid,
            self.rtc,
        )

    def head(self) -> int:
        """Encode the 64-bit request header."""
        return self._wire()[0]

    def tail(self, crc: Optional[int] = None) -> int:
        """Encode the 64-bit request tail (CRC computed unless given)."""
        if crc is not None:
            w = 0
            w = field_set(w, 0, 9, self.rrp)
            w = field_set(w, 9, 9, self.frp)
            w = field_set(w, 18, 3, self.seq)
            w = field_set(w, 21, 1, self.pb)
            w = field_set(w, 22, 3, self.slid)
            w = field_set(w, 29, 3, self.rtc)
            return field_set(w, 32, 32, crc)
        return self._wire()[2]

    def encode(self) -> List[int]:
        """Encode the full packet as ``2*lng`` 64-bit words."""
        head, data_words, tail = self._wire()
        return [head, *data_words, tail]

    def verify_crc(self) -> None:
        """Recompute the packet CRC and check it against the tail.

        Equivalent to ``RequestPacket.decode(pkt.encode(),
        check_crc=True)`` but verifies the already-encoded words
        directly instead of paying a full encode→decode round trip.

        Raises:
            HMCPacketError: on CRC mismatch.
        """
        head, data_words, tail = self._wire()
        want = _crc.packet_crc([head, *data_words, tail])
        got = field_get(tail, 32, 32)
        if want != got:
            raise HMCPacketError(
                f"request CRC mismatch: packet carries {got:#010x}, "
                f"computed {want:#010x}"
            )

    @classmethod
    def decode(cls, words: Sequence[int], *, check_crc: bool = False) -> "RequestPacket":
        """Decode a request packet from its 64-bit word representation.

        Raises:
            HMCPacketError: if the word count disagrees with the LNG
                field, or (with ``check_crc``) the CRC does not match.
        """
        if len(words) < 2:
            raise HMCPacketError("a packet is at least two words (head + tail)")
        head, tail = words[0], words[-1]
        lng = field_get(head, 7, 5)
        if len(words) != 2 * lng:
            raise HMCPacketError(
                f"LNG field says {lng} FLITs ({2 * lng} words) "
                f"but buffer holds {len(words)} words"
            )
        pkt = cls(
            cmd=field_get(head, 0, 7),
            tag=field_get(head, 12, 11),
            addr=field_get(head, 24, 34),
            cub=field_get(head, 61, 3),
            data=unpack_data(words[1:-1]),
            rrp=field_get(tail, 0, 9),
            frp=field_get(tail, 9, 9),
            seq=field_get(tail, 18, 3),
            pb=field_get(tail, 21, 1),
            slid=field_get(tail, 22, 3),
            rtc=field_get(tail, 29, 3),
        )
        if check_crc:
            want = _crc.packet_crc(list(words))
            got = field_get(tail, 32, 32)
            if want != got:
                raise HMCPacketError(
                    f"request CRC mismatch: packet carries {got:#010x}, "
                    f"computed {want:#010x}"
                )
        return pkt


@dataclass(slots=True)
class ResponsePacket:
    """A decoded HMC response packet."""

    cmd: int
    tag: int
    cub: int = 0
    slid: int = 0
    data: bytes = b""
    rrp: int = 0
    frp: int = 0
    seq: int = 0
    dinv: int = 0
    errstat: int = 0
    rtc: int = 0
    #: Cycle at which the device retired the response (simulator metadata,
    #: not part of the wire format; -1 until retired).
    retire_cycle: int = field(default=-1, compare=False)
    #: Cycle at which the originating request was injected (simulator
    #: metadata used for latency tracing; -1 when unknown).
    inject_cycle: int = field(default=-1, compare=False)
    #: Device/link the originating request entered on (simulator metadata
    #: used to route responses back through chained topologies).
    origin_dev: int = field(default=-1, compare=False)
    origin_link: int = field(default=-1, compare=False)

    @property
    def lng(self) -> int:
        """Packet length in FLITs."""
        return 1 + len(self.data) // FLIT_BYTES

    @property
    def response(self) -> Optional[hmc_response_t]:
        """The response enum member, or None for custom CMC codes."""
        try:
            return hmc_response_t(self.cmd)
        except ValueError:
            return None

    def _wire(self) -> Tuple[int, Tuple[int, ...], int]:
        """(head, data words, tail) from the memoized wire builder."""
        return _rsp_wire(
            self.cmd,
            self.tag,
            self.cub,
            self.slid,
            self.data,
            self.rrp,
            self.frp,
            self.seq,
            self.dinv,
            self.errstat,
            self.rtc,
        )

    def head(self) -> int:
        """Encode the 64-bit response header."""
        return self._wire()[0]

    def tail(self, crc: Optional[int] = None) -> int:
        """Encode the 64-bit response tail (CRC computed unless given)."""
        if crc is not None:
            w = 0
            w = field_set(w, 0, 9, self.rrp)
            w = field_set(w, 9, 9, self.frp)
            w = field_set(w, 18, 3, self.seq)
            w = field_set(w, 21, 1, self.dinv)
            w = field_set(w, 22, 7, self.errstat)
            w = field_set(w, 29, 3, self.rtc)
            return field_set(w, 32, 32, crc)
        return self._wire()[2]

    def encode(self) -> List[int]:
        """Encode the full packet as ``2*lng`` 64-bit words."""
        head, data_words, tail = self._wire()
        return [head, *data_words, tail]

    def verify_crc(self) -> None:
        """Recompute the packet CRC and check it against the tail.

        Equivalent to ``ResponsePacket.decode(rsp.encode(),
        check_crc=True)`` but verifies the already-encoded words
        directly instead of paying a full encode→decode round trip.

        Raises:
            HMCPacketError: on CRC mismatch.
        """
        head, data_words, tail = self._wire()
        want = _crc.packet_crc([head, *data_words, tail])
        got = field_get(tail, 32, 32)
        if want != got:
            raise HMCPacketError(
                f"response CRC mismatch: packet carries {got:#010x}, "
                f"computed {want:#010x}"
            )

    @classmethod
    def decode(
        cls, words: Sequence[int], *, check_crc: bool = False
    ) -> "ResponsePacket":
        """Decode a response packet from its 64-bit word representation.

        Raises:
            HMCPacketError: on length or (optional) CRC mismatch.
        """
        if len(words) < 2:
            raise HMCPacketError("a packet is at least two words (head + tail)")
        head, tail = words[0], words[-1]
        lng = field_get(head, 7, 5)
        if len(words) != 2 * lng:
            raise HMCPacketError(
                f"LNG field says {lng} FLITs ({2 * lng} words) "
                f"but buffer holds {len(words)} words"
            )
        pkt = cls(
            cmd=field_get(head, 0, 7),
            tag=field_get(head, 12, 11),
            cub=field_get(head, 61, 3),
            slid=field_get(head, 23, 3),
            data=unpack_data(words[1:-1]),
            rrp=field_get(tail, 0, 9),
            frp=field_get(tail, 9, 9),
            seq=field_get(tail, 18, 3),
            dinv=field_get(tail, 21, 1),
            errstat=field_get(tail, 22, 7),
            rtc=field_get(tail, 29, 3),
        )
        if check_crc:
            want = _crc.packet_crc(list(words))
            got = field_get(tail, 32, 32)
            if want != got:
                raise HMCPacketError(
                    f"response CRC mismatch: packet carries {got:#010x}, "
                    f"computed {want:#010x}"
                )
        return pkt
