"""Link-layer flow control and retry (tokens, CRC errors, IRTRY).

The HMC specification's link layer is credit-based and self-healing:

* **Token flow control** — a transmitter may only send a packet when
  the receiver has advertised enough buffer tokens (one token = one
  FLIT).  Tokens are consumed on transmission and returned (via the
  RTC tail field) as the receiver frees buffer space.
* **Link retry** — every transmitted packet is held in a retry buffer
  until acknowledged through the returned retry pointer (RRP).  A
  receiver that detects a CRC error discards the packet and starts an
  IRTRY sequence; the transmitter replays everything from the failed
  forward retry pointer (FRP).

HMC-Sim's evaluation never exercises the retry path (its encoder
produces correct CRCs), so — like the timing and power models — the
flow-control model is **opt-in**: attach a :class:`LinkFlowModel` to
``HMCSim`` and request-side sends become token-limited, and an
:class:`ErrorModel` can inject deterministic CRC corruption whose
packets are dropped at the crossbar, negatively acknowledged, and
replayed from the retry buffer after the configured retry latency.
With no model attached the datapath is byte-identical to the baseline
(the paper's "No Simulation Perturbation" requirement).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.hmc.components import LinkFlow, register_component

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hmc.config import HMCConfig

__all__ = ["ErrorModel", "LinkFlowModel", "LinkFlowState", "RetryEvent"]

_M64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    x = (x + 0x9E3779B97F4A7C15) & _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return x ^ (x >> 31)


@dataclass(frozen=True)
class ErrorModel:
    """Deterministic CRC-corruption injector.

    Attributes:
        flit_error_rate: probability that any single transmitted FLIT
            is corrupted (each packet draws once per FLIT).
        seed: RNG seed; identical seeds reproduce identical error
            sequences, keeping simulations replayable.
    """

    flit_error_rate: float = 0.0
    seed: int = 0xC0FFEE

    def corrupts(self, sequence: int, flits: int) -> bool:
        """Deterministically decide whether transmission ``sequence``
        (the link's running packet counter) suffers a CRC error."""
        if self.flit_error_rate <= 0.0:
            return False
        h = _splitmix64(self.seed ^ (sequence * 0x9E3779B97F4A7C15 & _M64))
        # One draw per FLIT, folded into a single per-packet probability.
        p_ok = (1.0 - self.flit_error_rate) ** flits
        return (h / float(1 << 64)) >= p_ok


@dataclass
class RetryEvent:
    """One link-retry occurrence, for statistics and tracing."""

    cycle: int
    link: int
    tag: int
    frp: int


@dataclass
class LinkFlowState:
    """Per-link transmitter state: tokens and the retry buffer."""

    tokens: int
    #: Sent-but-unacknowledged packets: seq -> (flits, packet).
    retry_buffer: Dict[int, Tuple[int, object]] = field(default_factory=dict)
    next_seq: int = 0
    #: Packets scheduled for replay: (ready_cycle, packet).
    replay_queue: List[Tuple[int, object]] = field(default_factory=list)
    token_stalls: int = 0
    retries: int = 0
    sent_packets: int = 0


class LinkFlowModel(LinkFlow):
    """Token + retry behaviour for every request link of a context.

    Args:
        tokens_per_link: initial token credit per link, in FLITs
            (the receiver's input-buffer depth).
        retry_latency: cycles between a CRC drop being detected and
            the replayed packet re-entering the link.
        errors: optional CRC-corruption injector.
    """

    def __init__(
        self,
        tokens_per_link: int = 64,
        retry_latency: int = 8,
        errors: Optional[ErrorModel] = None,
    ):
        if tokens_per_link < 17:
            # A 256-byte write is 17 FLITs; fewer tokens would deadlock.
            raise ValueError("tokens_per_link must be >= 17 (max packet size)")
        if retry_latency < 1:
            raise ValueError("retry_latency must be >= 1")
        self.tokens_per_link = tokens_per_link
        self.retry_latency = retry_latency
        self.errors = errors
        self._links: Dict[Tuple[int, int], LinkFlowState] = {}
        self.retry_events: List[RetryEvent] = []
        # dev -> links with a nonempty replay queue.  Maintained by
        # every replay enqueue/drain so the cycle engine's active-set
        # scheduler can ask "does this device owe replays?" in O(1)
        # instead of scanning every link state.
        self._replay_links: Dict[int, Set[int]] = {}

    def state(self, dev: int, link: int) -> LinkFlowState:
        """The transmitter state for one (device, link)."""
        key = (dev, link)
        st = self._links.get(key)
        if st is None:
            st = LinkFlowState(tokens=self.tokens_per_link)
            self._links[key] = st
        return st

    # -- transmit side ---------------------------------------------------------

    def try_acquire(self, dev: int, link: int, flits: int) -> bool:
        """Consume ``flits`` tokens; False (a token stall) if short."""
        st = self.state(dev, link)
        if st.tokens < flits:
            st.token_stalls += 1
            return False
        st.tokens -= flits
        return True

    def refund(self, dev: int, link: int, flits: int) -> None:
        """Return tokens for a packet that was never transmitted
        (e.g. the crossbar queue rejected it after credit was granted)."""
        st = self.state(dev, link)
        st.tokens = min(self.tokens_per_link, st.tokens + flits)

    def on_transmit(self, dev: int, link: int, flits: int, packet: object) -> int:
        """Record a transmitted packet in the retry buffer; returns its
        sequence number (the FRP the receiver will see)."""
        st = self.state(dev, link)
        seq = st.next_seq
        st.next_seq += 1
        st.retry_buffer[seq] = (flits, packet)
        st.sent_packets += 1
        return seq

    def transmission_corrupted(self, dev: int, link: int, seq: int) -> bool:
        """Ask the error model whether transmission ``seq`` was hit."""
        if self.errors is None:
            return False
        flits, _ = self.state(dev, link).retry_buffer.get(seq, (1, None))
        return self.errors.corrupts((dev << 32) | (link << 24) | seq, flits)

    # -- receive side ------------------------------------------------------------

    def acknowledge(self, dev: int, link: int, seq: int) -> None:
        """The receiver consumed packet ``seq``: release the retry slot
        and return its tokens (the RRP/RTC return path)."""
        st = self.state(dev, link)
        entry = st.retry_buffer.pop(seq, None)
        if entry is not None:
            st.tokens = min(self.tokens_per_link, st.tokens + entry[0])

    def negative_acknowledge(
        self, dev: int, link: int, seq: int, cycle: int, tag: int
    ) -> None:
        """The receiver dropped packet ``seq`` on a CRC error: schedule
        a replay after the retry latency (the IRTRY sequence)."""
        st = self.state(dev, link)
        entry = st.retry_buffer.pop(seq, None)
        if entry is None:
            return
        flits, packet = entry
        st.tokens = min(self.tokens_per_link, st.tokens + flits)
        st.retries += 1
        st.replay_queue.append((cycle + self.retry_latency, packet))
        self._replay_links.setdefault(dev, set()).add(link)
        self.retry_events.append(RetryEvent(cycle=cycle, link=link, tag=tag, frp=seq))

    def schedule_replay(
        self, dev: int, link: int, ready_cycle: int, packet: object
    ) -> None:
        """Re-queue a replay that could not re-enter the link this cycle
        (no tokens, or the crossbar queue was full)."""
        st = self.state(dev, link)
        st.replay_queue.append((ready_cycle, packet))
        self._replay_links.setdefault(dev, set()).add(link)

    def due_replays(self, dev: int, link: int, cycle: int) -> List[object]:
        """Packets whose retry latency has elapsed, removed from the queue."""
        st = self.state(dev, link)
        if not st.replay_queue:
            return []
        ready = [p for c, p in st.replay_queue if c <= cycle]
        st.replay_queue = [(c, p) for c, p in st.replay_queue if c > cycle]
        if not st.replay_queue:
            links = self._replay_links.get(dev)
            if links is not None:
                links.discard(link)
                if not links:
                    del self._replay_links[dev]
        return ready

    def replay_links(self, dev: int) -> Set[int]:
        """Links of ``dev`` that currently hold scheduled replays."""
        return self._replay_links.get(dev) or set()

    def has_pending_replays(self) -> bool:
        """True when any link of any device holds a scheduled replay.

        The public form of the drain-idle check — callers must not
        reach into the per-link state dictionary.
        """
        return bool(self._replay_links)

    # -- statistics ------------------------------------------------------------

    def total_retries(self) -> int:
        """Retries across every link."""
        return sum(st.retries for st in self._links.values())

    def total_token_stalls(self) -> int:
        """Token stalls across every link."""
        return sum(st.token_stalls for st in self._links.values())

    def outstanding(self, dev: int, link: int) -> int:
        """Unacknowledged packets currently held in a retry buffer."""
        return len(self.state(dev, link).retry_buffer)


@register_component("link_flow", "tokens")
def _tokens_flow(config: "HMCConfig") -> LinkFlowModel:
    """Factory for the token + retry model with default credit/latency.

    Registered under seam key ``tokens``; the ``none`` key (the
    baseline's flow-free datapath) is registered in
    :mod:`repro.hmc.composition` and yields ``None``.
    """
    return LinkFlowModel()
