"""Built-in Gen2 atomic memory operations (Table I of the paper).

Each atomic performs its read-modify-write against the backing store
*in-situ*, exactly as the HMC logic layer would: the host never sees
the intermediate value, and a single request packet carries the whole
operation.  This is the property that yields the bandwidth advantage
quantified in Table II (a cache-based increment costs a full read +
write of a cache line; ``INC8`` costs one request FLIT and one
response FLIT).

Data-semantics conventions (pinned by ``tests/hmc/test_amo.py``):

* All operands are little-endian.  8-byte arithmetic is signed 64-bit
  two's complement; 16-byte arithmetic is signed 128-bit.
* ``TWOADD8`` adds the payload's low 8 bytes to ``mem[addr]`` and its
  high 8 bytes to ``mem[addr+8]``.
* The "and return" variants (``TWOADDS8R``, ``ADDS16R``, ``BWR8R``,
  the boolean ops, the CAS family, ``SWAP16``) return the **original**
  memory operand (fetch-op semantics).
* 8-byte CAS payloads are ``compare`` (low 8 bytes) + ``swap`` (high
  8 bytes).  The 16-byte CAS variants carry only a 16-byte operand, so
  the operand doubles as both comparand and swap value (``CASZERO16``
  compares against zero); this interpretation is documented here
  because the public 2.1 spec text is not available offline.
* ``EQ8``/``EQ16`` return no data (1-FLIT response); the comparison
  outcome is reported in the response ``ERRSTAT`` field — ``0`` for
  equal, :data:`ERRSTAT_EQ_FAIL` for not-equal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.errors import HMCPacketError
from repro.hmc.commands import command_info, hmc_rqst_t
from repro.hmc.memory import MemoryBackend

__all__ = ["AMOResult", "execute_amo", "is_amo", "ERRSTAT_EQ_FAIL"]

#: ERRSTAT value reported by EQ8/EQ16 when the comparison fails.
ERRSTAT_EQ_FAIL = 0x02

_M64 = (1 << 64) - 1
_M128 = (1 << 128) - 1


@dataclass(frozen=True)
class AMOResult:
    """Outcome of one atomic: response payload bytes and error status."""

    rsp_data: bytes = b""
    errstat: int = 0


def _i64(b: bytes) -> int:
    return int.from_bytes(b, "little", signed=True)


def _u128(b: bytes) -> int:
    return int.from_bytes(b, "little")


def _i128(b: bytes) -> int:
    return int.from_bytes(b, "little", signed=True)


# Each handler: (mem, addr, payload) -> AMOResult


def _twoadd8(mem: MemoryBackend, addr: int, pl: bytes, ret: bool) -> AMOResult:
    orig = mem.read(addr, 16)
    a = (_i64(orig[:8]) + _i64(pl[:8])) & _M64
    b = (_i64(orig[8:]) + _i64(pl[8:])) & _M64
    mem.write(addr, a.to_bytes(8, "little") + b.to_bytes(8, "little"))
    return AMOResult(orig if ret else b"")


def _add16(mem: MemoryBackend, addr: int, pl: bytes, ret: bool) -> AMOResult:
    orig = mem.read(addr, 16)
    v = (_i128(orig) + _i128(pl)) & _M128
    mem.write(addr, v.to_bytes(16, "little"))
    return AMOResult(orig if ret else b"")


def _inc8(mem: MemoryBackend, addr: int, _pl: bytes) -> AMOResult:
    mem.write_u64(addr, (mem.read_u64(addr) + 1) & _M64)
    return AMOResult()


def _bool16(op: Callable[[int, int], int]) -> Callable[[MemoryBackend, int, bytes], AMOResult]:
    def handler(mem: MemoryBackend, addr: int, pl: bytes) -> AMOResult:
        orig = mem.read(addr, 16)
        v = op(_u128(orig), _u128(pl)) & _M128
        mem.write(addr, v.to_bytes(16, "little"))
        return AMOResult(orig)

    return handler


def _bwr(mem: MemoryBackend, addr: int, pl: bytes, ret: bool) -> AMOResult:
    orig = mem.read(addr, 8)
    d = int.from_bytes(pl[:8], "little")
    m = int.from_bytes(pl[8:], "little")
    o = int.from_bytes(orig, "little")
    v = (o & ~m & _M64) | (d & m)
    mem.write(addr, v.to_bytes(8, "little"))
    # 16-byte response payload with the original 8 bytes in the low half.
    return AMOResult(orig + bytes(8) if ret else b"")


def _cas8(
    cmp_fn: Callable[[int, int], bool]
) -> Callable[[MemoryBackend, int, bytes], AMOResult]:
    def handler(mem: MemoryBackend, addr: int, pl: bytes) -> AMOResult:
        compare, swap = pl[:8], pl[8:]
        orig = mem.read(addr, 8)
        if cmp_fn(_i64(orig), _i64(compare)):
            mem.write(addr, swap)
        return AMOResult(orig + bytes(8))

    return handler


def _cas16(
    cmp_fn: Callable[[int, int], bool]
) -> Callable[[MemoryBackend, int, bytes], AMOResult]:
    def handler(mem: MemoryBackend, addr: int, pl: bytes) -> AMOResult:
        orig = mem.read(addr, 16)
        if cmp_fn(_i128(orig), _i128(pl)):
            mem.write(addr, pl)
        return AMOResult(orig)

    return handler


def _caszero16(mem: MemoryBackend, addr: int, pl: bytes) -> AMOResult:
    orig = mem.read(addr, 16)
    if _u128(orig) == 0:
        mem.write(addr, pl)
    return AMOResult(orig)


def _eq(nbytes: int) -> Callable[[MemoryBackend, int, bytes], AMOResult]:
    def handler(mem: MemoryBackend, addr: int, pl: bytes) -> AMOResult:
        orig = mem.read(addr, nbytes)
        equal = orig == pl[:nbytes]
        return AMOResult(b"", 0 if equal else ERRSTAT_EQ_FAIL)

    return handler


def _swap16(mem: MemoryBackend, addr: int, pl: bytes) -> AMOResult:
    orig = mem.read(addr, 16)
    mem.write(addr, pl)
    return AMOResult(orig)


R = hmc_rqst_t
_HANDLERS: Dict[int, Callable[[MemoryBackend, int, bytes], AMOResult]] = {
    int(R.TWOADD8): lambda m, a, p: _twoadd8(m, a, p, False),
    int(R.P_2ADD8): lambda m, a, p: _twoadd8(m, a, p, False),
    int(R.TWOADDS8R): lambda m, a, p: _twoadd8(m, a, p, True),
    int(R.ADD16): lambda m, a, p: _add16(m, a, p, False),
    int(R.P_ADD16): lambda m, a, p: _add16(m, a, p, False),
    int(R.ADDS16R): lambda m, a, p: _add16(m, a, p, True),
    int(R.INC8): _inc8,
    int(R.P_INC8): _inc8,
    int(R.XOR16): _bool16(lambda m, o: m ^ o),
    int(R.OR16): _bool16(lambda m, o: m | o),
    int(R.NOR16): _bool16(lambda m, o: ~(m | o)),
    int(R.AND16): _bool16(lambda m, o: m & o),
    int(R.NAND16): _bool16(lambda m, o: ~(m & o)),
    int(R.BWR): lambda m, a, p: _bwr(m, a, p, False),
    int(R.P_BWR): lambda m, a, p: _bwr(m, a, p, False),
    int(R.BWR8R): lambda m, a, p: _bwr(m, a, p, True),
    int(R.CASEQ8): _cas8(lambda mv, cv: mv == cv),
    int(R.CASGT8): _cas8(lambda mv, cv: mv > cv),
    int(R.CASLT8): _cas8(lambda mv, cv: mv < cv),
    int(R.CASGT16): _cas16(lambda mv, cv: mv > cv),
    int(R.CASLT16): _cas16(lambda mv, cv: mv < cv),
    int(R.CASZERO16): _caszero16,
    int(R.EQ8): _eq(8),
    int(R.EQ16): _eq(16),
    int(R.SWAP16): _swap16,
}


def is_amo(cmd: int) -> bool:
    """True if ``cmd`` is a Gen2 atomic (posted or returning)."""
    return cmd in _HANDLERS


def execute_amo(
    mem: MemoryBackend, addr: int, cmd: int, payload: bytes
) -> AMOResult:
    """Execute one atomic in-situ.

    Args:
        mem: the device backing store.
        addr: target base address from the request header.
        cmd: the 7-bit request command code (must satisfy :func:`is_amo`).
        payload: the request data payload; its length must match the
            command's registered request size (0 or 16 bytes).

    Returns:
        The response payload (sized per Table I) and error status.

    Raises:
        HMCPacketError: for unknown commands or mis-sized payloads.
    """
    handler = _HANDLERS.get(cmd)
    if handler is None:
        raise HMCPacketError(f"command {cmd} is not a Gen2 atomic")
    info = command_info(hmc_rqst_t(cmd))
    want = info.rqst_data_bytes or 0
    if len(payload) != want:
        raise HMCPacketError(
            f"{hmc_rqst_t(cmd).name}: atomic payload is {len(payload)} bytes, "
            f"expected {want}"
        )
    result = handler(mem, addr, payload)
    want_rsp = info.rsp_data_bytes or 0
    if len(result.rsp_data) != want_rsp:
        raise HMCPacketError(
            f"{hmc_rqst_t(cmd).name}: atomic produced {len(result.rsp_data)} "
            f"response bytes, expected {want_rsp}"
        )
    return result


def reference_amo(cmd: int, mem_before: bytes, payload: bytes) -> Tuple[bytes, bytes, int]:
    """Pure-functional reference model used by property tests.

    Args:
        cmd: atomic command code.
        mem_before: 16 bytes of memory at the target address.
        payload: request payload (may be empty for INC8).

    Returns:
        ``(mem_after, rsp_data, errstat)``.
    """
    mem = MemoryBackend(16)
    mem.write(0, mem_before)
    result = execute_amo(mem, 0, cmd, payload)
    return mem.read(0, 16), result.rsp_data, result.errstat
