"""DRAM bank state: busy windows and row-buffer tracking.

In the baseline HMC-Sim model a bank completes a request in the cycle
it is issued (the device's behaviour is dominated by queueing, which is
what the paper's evaluation studies).  The future-work timing extension
(:mod:`repro.hmc.timing`) layers DRAM timing on top: a request holds
its bank busy for a number of cycles derived from row-buffer state, and
subsequent requests to the same bank stall at the head of the vault
queue — producing the *bank conflict* events the tracer records.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Bank"]


@dataclass
class Bank:
    """One bank inside a vault."""

    index: int
    #: First cycle at which a new request may be issued to this bank.
    busy_until: int = 0
    #: Currently open row, or -1 when the row buffer is closed.
    open_row: int = -1
    #: Statistics.
    accesses: int = 0
    conflicts: int = 0
    row_hits: int = 0
    row_misses: int = 0

    def available(self, cycle: int) -> bool:
        """True if the bank can accept a request at ``cycle``."""
        return cycle >= self.busy_until

    def occupy(self, cycle: int, busy_cycles: int, row: int, row_hit: bool) -> None:
        """Mark the bank busy for ``busy_cycles`` starting at ``cycle``."""
        self.accesses += 1
        if row_hit:
            self.row_hits += 1
        else:
            self.row_misses += 1
        self.open_row = row
        self.busy_until = cycle + busy_cycles

    def record_conflict(self) -> None:
        """Count a request that found the bank busy."""
        self.conflicts += 1
