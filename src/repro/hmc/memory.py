"""Sparse backing stores for HMC device memory (seam ``memory``).

HMC-Sim 1.0 modelled only request *flow*; HMC-Sim 2.0 must hold real
data so that atomic and CMC operations can read-modify-write it.  An
8 GB address space cannot be allocated eagerly, so the stores are
paged: ``bytearray`` pages are materialized on first touch and
untouched regions read as zero (the initial state the paper's mutex
model relies on: "the mutex values are initialized to a known state
that signifies that no locks are present").

Two page geometries register with the component registry:

* ``paged`` — 4 KiB pages (:class:`MemoryBackend`), the default.
  Minimal resident memory for sparse traffic (a mutex hot spot touches
  one page).
* ``chunked`` — 64 KiB chunks (:class:`ChunkedMemoryBackend`).  Fewer,
  larger allocations and page-table entries; the better trade for
  dense streaming workloads (STREAM, GUPS tables) at 16x the
  first-touch cost.

Typed accessors for the 8- and 16-byte operands used by the Gen2
atomics are provided; all multi-byte values are little-endian.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.errors import HMCAddressError
from repro.hmc.components import MemoryModel, register_component

__all__ = [
    "MemoryBackend",
    "ChunkedMemoryBackend",
    "MemoryView",
    "PAGE_SIZE",
]

#: Bytes per lazily-allocated page of the default (``paged``) backend.
PAGE_SIZE = 4096

_PAGE_MASK = PAGE_SIZE - 1


@register_component("memory", "paged")
class MemoryBackend(MemoryModel):
    """Lazily paged byte-addressable memory of a fixed capacity.

    Args:
        capacity: total bytes addressable through this store.
    """

    #: log2 of the page size; subclasses override to change geometry.
    PAGE_SHIFT = 12

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._pages: Dict[int, bytearray] = {}
        # Geometry constants as instance attributes: the single-page
        # fast paths below (and MemoryView's) read these instead of
        # module globals so subclasses change geometry for free.
        self._shift = self.PAGE_SHIFT
        self._psize = 1 << self.PAGE_SHIFT
        self._pmask = self._psize - 1

    # -- bulk access ---------------------------------------------------------

    def _check(self, addr: int, nbytes: int) -> None:
        if addr < 0 or nbytes < 0 or addr + nbytes > self.capacity:
            raise HMCAddressError(
                f"access [{addr:#x}, {addr + nbytes:#x}) outside "
                f"capacity {self.capacity:#x}"
            )

    def read(self, addr: int, nbytes: int) -> bytes:
        """Read ``nbytes`` starting at ``addr`` (zero-fill for cold pages)."""
        self._check(addr, nbytes)
        off = addr & self._pmask
        if off + nbytes <= self._psize:
            # Fast path: the access stays within one page (every
            # packet-sized access — pages are >= 4 KiB, packets <= 256 B).
            page = self._pages.get(addr >> self._shift)
            if page is None:
                return bytes(nbytes)
            return bytes(page[off : off + nbytes])
        out = bytearray()
        while nbytes > 0:
            page_no, off = addr >> self._shift, addr & self._pmask
            take = min(nbytes, self._psize - off)
            page = self._pages.get(page_no)
            if page is None:
                out += bytes(take)
            else:
                out += page[off : off + take]
            addr += take
            nbytes -= take
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        """Write ``data`` starting at ``addr``."""
        self._check(addr, len(data))
        nbytes = len(data)
        off = addr & self._pmask
        if off + nbytes <= self._psize:
            page_no = addr >> self._shift
            page = self._pages.get(page_no)
            if page is None:
                page = bytearray(self._psize)
                self._pages[page_no] = page
            page[off : off + nbytes] = data
            return
        pos = 0
        while pos < nbytes:
            page_no, off = addr >> self._shift, addr & self._pmask
            take = min(nbytes - pos, self._psize - off)
            page = self._pages.get(page_no)
            if page is None:
                page = bytearray(self._psize)
                self._pages[page_no] = page
            page[off : off + take] = data[pos : pos + take]
            addr += take
            pos += take

    # -- typed accessors (little-endian) --------------------------------------

    def read_u64(self, addr: int) -> int:
        """Read an unsigned 64-bit value."""
        return int.from_bytes(self.read(addr, 8), "little")

    def write_u64(self, addr: int, value: int) -> None:
        """Write an unsigned 64-bit value (masked to 64 bits)."""
        self.write(addr, (value & ((1 << 64) - 1)).to_bytes(8, "little"))

    def read_i64(self, addr: int) -> int:
        """Read a signed 64-bit value."""
        return int.from_bytes(self.read(addr, 8), "little", signed=True)

    def write_i64(self, addr: int, value: int) -> None:
        """Write a signed 64-bit value (two's-complement wrapped)."""
        self.write_u64(addr, value & ((1 << 64) - 1))

    def read_u128(self, addr: int) -> int:
        """Read an unsigned 128-bit value."""
        return int.from_bytes(self.read(addr, 16), "little")

    def write_u128(self, addr: int, value: int) -> None:
        """Write an unsigned 128-bit value (masked to 128 bits)."""
        self.write(addr, (value & ((1 << 128) - 1)).to_bytes(16, "little"))

    def read_i128(self, addr: int) -> int:
        """Read a signed 128-bit value."""
        return int.from_bytes(self.read(addr, 16), "little", signed=True)

    def write_i128(self, addr: int, value: int) -> None:
        """Write a signed 128-bit value (two's-complement wrapped)."""
        self.write_u128(addr, value & ((1 << 128) - 1))

    # -- introspection ---------------------------------------------------------

    @property
    def page_size(self) -> int:
        """Bytes per lazily-allocated page of this store."""
        return self._psize

    @property
    def resident_pages(self) -> int:
        """Number of pages materialized so far."""
        return len(self._pages)

    @property
    def resident_bytes(self) -> int:
        """Bytes of host memory consumed by materialized pages."""
        return len(self._pages) * self._psize

    def iter_resident(self) -> Iterator[Tuple[int, bytes]]:
        """Yield ``(base_address, page_bytes)`` for each materialized page."""
        for page_no in sorted(self._pages):
            yield page_no << self._shift, bytes(self._pages[page_no])

    def clear(self) -> None:
        """Drop every page, returning the store to all-zeros."""
        self._pages.clear()

    def view(self, base: int, size: int) -> "MemoryView":
        """A window of this store rebased to address 0 (one device's
        slice of a chained topology's global store)."""
        return MemoryView(self, base, size)


@register_component("memory", "chunked")
class ChunkedMemoryBackend(MemoryBackend):
    """The ``paged`` store with 64 KiB chunks instead of 4 KiB pages.

    Identical semantics and API; only the lazy-allocation granularity
    changes.  Dense workloads touch 16x fewer page-table entries per
    resident byte, at the cost of materializing 64 KiB on first touch.
    """

    PAGE_SHIFT = 16


class MemoryView:
    """A bounds-checked, rebased window onto a :class:`MemoryBackend`.

    Exposes the same accessor API as the backend; used to hand each
    device (and the atomic unit) a view where local address 0 is the
    device's first byte.  The view copies the backend's page geometry
    at construction, so its single-page fast path works for any
    registered page size.
    """

    __slots__ = ("_backend", "_base", "capacity", "_pages", "_shift", "_psize", "_pmask")

    def __init__(self, backend: MemoryBackend, base: int, size: int):
        if base < 0 or size < 0 or base + size > backend.capacity:
            raise HMCAddressError(
                f"view [{base:#x}, {base + size:#x}) outside backend capacity"
            )
        self._backend = backend
        self._base = base
        self.capacity = size
        # The page dict is mutated in place (clear() empties it, never
        # rebinds), so caching the reference is safe and skips one
        # attribute hop per access on the hot path.
        self._pages = backend._pages
        self._shift = backend._shift
        self._psize = backend._psize
        self._pmask = backend._pmask

    def _check(self, addr: int, nbytes: int) -> None:
        if addr < 0 or nbytes < 0 or addr + nbytes > self.capacity:
            raise HMCAddressError(
                f"access [{addr:#x}, {addr + nbytes:#x}) outside "
                f"view capacity {self.capacity:#x}"
            )

    def read(self, addr: int, nbytes: int) -> bytes:
        """Read ``nbytes`` at view-local ``addr``."""
        self._check(addr, nbytes)
        # The view bounds check guarantees the rebased access is inside
        # the backend, so go straight at the page store (single-page
        # fast path) instead of re-checking through backend.read.
        a = self._base + addr
        off = a & self._pmask
        if off + nbytes <= self._psize:
            page = self._pages.get(a >> self._shift)
            if page is None:
                return bytes(nbytes)
            return bytes(page[off : off + nbytes])
        return self._backend.read(a, nbytes)

    def write(self, addr: int, data: bytes) -> None:
        """Write ``data`` at view-local ``addr``."""
        nbytes = len(data)
        self._check(addr, nbytes)
        a = self._base + addr
        off = a & self._pmask
        if off + nbytes <= self._psize:
            page_no = a >> self._shift
            page = self._pages.get(page_no)
            if page is None:
                page = bytearray(self._psize)
                self._pages[page_no] = page
            page[off : off + nbytes] = data
            return
        self._backend.write(a, data)

    def read_u64(self, addr: int) -> int:
        """Read an unsigned 64-bit value."""
        return int.from_bytes(self.read(addr, 8), "little")

    def write_u64(self, addr: int, value: int) -> None:
        """Write an unsigned 64-bit value (masked to 64 bits)."""
        self.write(addr, (value & ((1 << 64) - 1)).to_bytes(8, "little"))

    def read_u128(self, addr: int) -> int:
        """Read an unsigned 128-bit value."""
        return int.from_bytes(self.read(addr, 16), "little")

    def write_u128(self, addr: int, value: int) -> None:
        """Write an unsigned 128-bit value (masked to 128 bits)."""
        self.write(addr, (value & ((1 << 128) - 1)).to_bytes(16, "little"))
