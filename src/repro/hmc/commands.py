"""HMC Gen2 command set: request/response enumerations and FLIT metadata.

This module reconstructs the ``hmc_rqst_t`` / ``hmc_response_t``
enumerated types from HMC-Sim 2.0 together with the per-command packet
length metadata reported in Table I of the paper.

Key facts encoded here (and pinned by ``tests/hmc/test_commands.py``):

* The request command field (``CMD``) is 7 bits wide: codes 0..127.
* 58 codes are defined by the HMC 2.0/2.1 specification (flow control,
  reads, writes, posted writes, mode read/write, and the Gen2 atomic
  memory operations).
* Exactly **70** codes are unused by the specification; HMC-Sim 2.0
  enumerates each of them as ``CMCnn`` (``nn`` = decimal command code)
  so that user-defined Custom Memory Cube operations can occupy any of
  them while remaining wire-compatible with the Gen2 packet format.
* One FLIT is 128 bits (16 bytes).  A packet's head+tail occupy exactly
  one FLIT, so a request carrying *N* bytes of data is ``1 + N/16``
  FLITs long.  The largest packet is 17 FLITs (a 256-byte write).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = [
    "hmc_rqst_t",
    "hmc_response_t",
    "CommandKind",
    "CommandInfo",
    "COMMAND_TABLE",
    "COMMAND_TABLE_LIST",
    "CMC_CODES",
    "DEFINED_CODES",
    "command_info",
    "command_for_code",
    "is_cmc_code",
    "cmc_rqst_for_code",
    "FLIT_BYTES",
    "MAX_PACKET_FLITS",
    "CMD_FIELD_WIDTH",
]

#: Bytes per FLIT.  The HMC specification defines a FLIT as 128 bits.
FLIT_BYTES = 16

#: The largest legal packet: a 256-byte write (1 overhead FLIT + 16 data FLITs).
MAX_PACKET_FLITS = 17

#: Width of the request command field in bits.
CMD_FIELD_WIDTH = 7


class CommandKind(enum.Enum):
    """Coarse classification of a request command."""

    FLOW = "flow"
    READ = "read"
    WRITE = "write"
    POSTED_WRITE = "posted_write"
    MODE = "mode"
    ATOMIC = "atomic"
    POSTED_ATOMIC = "posted_atomic"
    CMC = "cmc"


class hmc_response_t(enum.IntEnum):
    """Response packet command codes (``hmc_response_t``).

    ``RSP_NONE`` marks posted requests (no response packet is ever
    generated).  ``RSP_CMC`` marks a *custom* response command whose
    actual wire code is supplied by the CMC plugin's ``RSP_CMD_CODE``
    static (see Table III of the paper); the value here is only a
    sentinel used inside the simulator.
    """

    RD_RS = 0x38
    WR_RS = 0x39
    MD_RD_RS = 0x3A
    MD_WR_RS = 0x3B
    RSP_ERROR = 0x3E
    RSP_NONE = 0x00
    RSP_CMC = 0x7F


# ---------------------------------------------------------------------------
# Request command construction.
#
# The defined (specification) commands are listed explicitly; the remaining
# codes are generated as CMCnn members.  The numeric encodings follow the
# HMC 2.1 specification / HMC-Sim 2.0 source conventions.
# ---------------------------------------------------------------------------

_DEFINED: Dict[str, int] = {
    # Flow control
    "FLOW_NULL": 0x00,
    "PRET": 0x01,
    "TRET": 0x02,
    "IRTRY": 0x03,
    # Writes (16..128 bytes in 16-byte steps) + 256-byte write
    "WR16": 8,
    "WR32": 9,
    "WR48": 10,
    "WR64": 11,
    "WR80": 12,
    "WR96": 13,
    "WR112": 14,
    "WR128": 15,
    "WR256": 79,
    # Mode write / bit write
    "MD_WR": 16,
    "BWR": 17,
    # Dual 8-byte add immediate / single 16-byte add immediate
    "TWOADD8": 18,
    "ADD16": 19,
    # Posted writes
    "P_WR16": 24,
    "P_WR32": 25,
    "P_WR48": 26,
    "P_WR64": 27,
    "P_WR80": 28,
    "P_WR96": 29,
    "P_WR112": 30,
    "P_WR128": 31,
    "P_WR256": 95,
    "P_BWR": 33,
    "P_2ADD8": 34,
    "P_ADD16": 35,
    # Mode read
    "MD_RD": 40,
    # Reads (16..128 bytes) + 256-byte read
    "RD16": 48,
    "RD32": 49,
    "RD48": 50,
    "RD64": 51,
    "RD80": 52,
    "RD96": 53,
    "RD112": 54,
    "RD128": 55,
    "RD256": 119,
    # Gen2 arithmetic atomics
    "INC8": 80,
    "BWR8R": 81,
    "TWOADDS8R": 82,
    "ADDS16R": 83,
    "P_INC8": 84,
    # Gen2 boolean atomics
    "XOR16": 64,
    "OR16": 65,
    "NOR16": 66,
    "AND16": 67,
    "NAND16": 68,
    # Gen2 comparison atomics
    "CASGT8": 96,
    "CASLT8": 97,
    "CASGT16": 98,
    "CASLT16": 99,
    "CASEQ8": 100,
    "CASZERO16": 101,
    "EQ16": 104,
    "EQ8": 105,
    "SWAP16": 106,
}

#: Command codes defined by the HMC 2.0/2.1 specification.
DEFINED_CODES = frozenset(_DEFINED.values())

#: The 70 unused command codes available for Custom Memory Cube operations.
CMC_CODES: Tuple[int, ...] = tuple(
    sorted(set(range(1 << CMD_FIELD_WIDTH)) - DEFINED_CODES)
)

assert len(CMC_CODES) == 70, "the Gen2 command space must leave exactly 70 CMC codes"

_members: Dict[str, int] = dict(_DEFINED)
for _code in CMC_CODES:
    _members[f"CMC{_code:02d}"] = _code

hmc_rqst_t = enum.IntEnum("hmc_rqst_t", _members)  # type: ignore[misc]
hmc_rqst_t.__doc__ = """Request packet command codes (``hmc_rqst_t``).

Every one of the 128 possible 7-bit command encodings has a member:
the 58 specification-defined commands by name plus ``CMC04``..``CMC127``
for the 70 codes reserved for Custom Memory Cube operations.
"""


@dataclass(frozen=True)
class CommandInfo:
    """Static metadata for one request command (one row of Table I).

    Attributes:
        rqst: the request enum member.
        kind: coarse classification.
        rqst_flits: total request packet length in FLITs (head+tail
            included), or ``None`` for CMC codes (plugin-defined).
        rsp_flits: total response packet length in FLITs; ``0`` for
            posted commands; ``None`` for CMC codes.
        rsp_cmd: the response command used on success; ``RSP_NONE``
            for posted commands; ``RSP_CMC`` for CMC codes (actual
            value is plugin-defined).
    """

    rqst: "hmc_rqst_t"
    kind: CommandKind
    rqst_flits: Optional[int]
    rsp_flits: Optional[int]
    rsp_cmd: hmc_response_t

    # Derived values read once per simulated request on the execute
    # hot path; precomputed here so lookups are plain attribute loads
    # instead of per-access property evaluations.
    posted: bool = field(init=False)
    rsp_cmd_code: int = field(init=False)
    rqst_name: str = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "posted",
            self.rsp_cmd is hmc_response_t.RSP_NONE
            and self.kind in (CommandKind.POSTED_WRITE, CommandKind.POSTED_ATOMIC),
        )
        object.__setattr__(
            self,
            "rsp_cmd_code",
            int(self.rsp_cmd)
            if self.rsp_cmd is not hmc_response_t.RSP_NONE
            else 0,
        )
        object.__setattr__(self, "rqst_name", self.rqst.name)

    @property
    def code(self) -> int:
        """The 7-bit wire encoding of the command."""
        return int(self.rqst)

    @property
    def rqst_data_bytes(self) -> Optional[int]:
        """Bytes of data payload carried by the request."""
        if self.rqst_flits is None:
            return None
        return (self.rqst_flits - 1) * FLIT_BYTES

    @property
    def rsp_data_bytes(self) -> Optional[int]:
        """Bytes of data payload carried by the response."""
        if self.rsp_flits is None:
            return None
        return max(0, (self.rsp_flits - 1) * FLIT_BYTES)


def _info(
    name: str,
    kind: CommandKind,
    rqst_flits: Optional[int],
    rsp_flits: Optional[int],
    rsp_cmd: hmc_response_t,
) -> CommandInfo:
    return CommandInfo(hmc_rqst_t[name], kind, rqst_flits, rsp_flits, rsp_cmd)


def _build_table() -> Dict[int, CommandInfo]:
    R = CommandKind.READ
    W = CommandKind.WRITE
    PW = CommandKind.POSTED_WRITE
    A = CommandKind.ATOMIC
    PA = CommandKind.POSTED_ATOMIC
    F = CommandKind.FLOW
    M = CommandKind.MODE
    RD_RS = hmc_response_t.RD_RS
    WR_RS = hmc_response_t.WR_RS
    NONE = hmc_response_t.RSP_NONE

    rows = [
        # Flow control: single-FLIT, never answered.
        _info("FLOW_NULL", F, 1, 0, NONE),
        _info("PRET", F, 1, 0, NONE),
        _info("TRET", F, 1, 0, NONE),
        _info("IRTRY", F, 1, 0, NONE),
        # Mode register access.
        _info("MD_WR", M, 2, 1, hmc_response_t.MD_WR_RS),
        _info("MD_RD", M, 1, 2, hmc_response_t.MD_RD_RS),
    ]
    # Reads: 16..128 bytes, then the Gen2 256-byte read.
    for i, name in enumerate(
        ["RD16", "RD32", "RD48", "RD64", "RD80", "RD96", "RD112", "RD128"]
    ):
        rows.append(_info(name, R, 1, 2 + i, RD_RS))
    rows.append(_info("RD256", R, 1, 17, RD_RS))
    # Writes and posted writes: payload FLITs = size/16.
    for i, name in enumerate(
        ["WR16", "WR32", "WR48", "WR64", "WR80", "WR96", "WR112", "WR128"]
    ):
        rows.append(_info(name, W, 2 + i, 1, WR_RS))
    rows.append(_info("WR256", W, 17, 1, WR_RS))
    for i, name in enumerate(
        ["P_WR16", "P_WR32", "P_WR48", "P_WR64", "P_WR80", "P_WR96", "P_WR112", "P_WR128"]
    ):
        rows.append(_info(name, PW, 2 + i, 0, NONE))
    rows.append(_info("P_WR256", PW, 17, 0, NONE))
    # Gen2 atomics (Table I of the paper).
    rows += [
        _info("TWOADD8", A, 2, 1, WR_RS),
        _info("ADD16", A, 2, 1, WR_RS),
        _info("P_2ADD8", PA, 2, 0, NONE),
        _info("P_ADD16", PA, 2, 0, NONE),
        _info("TWOADDS8R", A, 2, 2, RD_RS),
        _info("ADDS16R", A, 2, 2, RD_RS),
        _info("INC8", A, 1, 1, WR_RS),
        _info("P_INC8", PA, 1, 0, NONE),
        _info("XOR16", A, 2, 2, RD_RS),
        _info("OR16", A, 2, 2, RD_RS),
        _info("NOR16", A, 2, 2, RD_RS),
        _info("AND16", A, 2, 2, RD_RS),
        _info("NAND16", A, 2, 2, RD_RS),
        _info("CASGT8", A, 2, 2, RD_RS),
        _info("CASLT8", A, 2, 2, RD_RS),
        _info("CASGT16", A, 2, 2, RD_RS),
        _info("CASLT16", A, 2, 2, RD_RS),
        _info("CASEQ8", A, 2, 2, RD_RS),
        _info("CASZERO16", A, 2, 2, RD_RS),
        _info("EQ8", A, 2, 1, WR_RS),
        _info("EQ16", A, 2, 1, WR_RS),
        _info("BWR", A, 2, 1, WR_RS),
        _info("P_BWR", PA, 2, 0, NONE),
        _info("BWR8R", A, 2, 2, RD_RS),
        _info("SWAP16", A, 2, 2, RD_RS),
    ]
    # CMC codes: lengths are plugin-defined at registration time.
    for code in CMC_CODES:
        rows.append(
            CommandInfo(
                hmc_rqst_t(code),
                CommandKind.CMC,
                None,
                None,
                hmc_response_t.RSP_CMC,
            )
        )

    table = {row.code: row for row in rows}
    if len(table) != 128:
        raise AssertionError(f"command table has {len(table)} entries, expected 128")
    return table


#: Complete command metadata table, keyed by 7-bit command code.
COMMAND_TABLE: Dict[int, CommandInfo] = _build_table()

#: The same table as a dense tuple indexed by command code — the cycle
#: engine's hot-path lookup (no hashing, no bounds arithmetic beyond the
#: index itself).
COMMAND_TABLE_LIST: Tuple[CommandInfo, ...] = tuple(
    COMMAND_TABLE[code] for code in range(1 << CMD_FIELD_WIDTH)
)


def command_info(rqst: "hmc_rqst_t") -> CommandInfo:
    """Return the :class:`CommandInfo` row for a request enum member."""
    return COMMAND_TABLE[int(rqst)]


def command_for_code(code: int) -> CommandInfo:
    """Return the :class:`CommandInfo` row for a raw 7-bit command code.

    Raises:
        KeyError: if ``code`` is outside ``0..127``.
    """
    if not 0 <= code < (1 << CMD_FIELD_WIDTH):
        raise KeyError(f"command code {code} outside the 7-bit command space")
    return COMMAND_TABLE_LIST[code]


def is_cmc_code(code: int) -> bool:
    """True if ``code`` is one of the 70 unused (CMC-eligible) codes."""
    return code in _CMC_CODE_SET


_CMC_CODE_SET = frozenset(CMC_CODES)


def cmc_rqst_for_code(code: int) -> "hmc_rqst_t":
    """Return the ``CMCnn`` enum member for an unused command code.

    Raises:
        ValueError: if ``code`` is a specification-defined command.
    """
    if not is_cmc_code(code):
        raise ValueError(f"command code {code} is defined by the HMC specification")
    return hmc_rqst_t(code)
