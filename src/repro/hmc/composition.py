"""Composition root: build pipeline stages from ``HMCConfig`` selections.

This module is the *only* place where the simulator core meets concrete
component implementations.  Importing it populates the component
registry (each built-in self-registers from its home module at import
time), and the ``build_*`` helpers below are how :class:`HMCSim` and
:class:`Device` construct their pipeline stages — always through the
registry, never by naming a class.  ``scripts/lint_no_function_imports.py``
enforces that :mod:`repro.hmc.device` and :mod:`repro.hmc.sim` import no
concrete seam implementation directly, so swapping an implementation is
always a config change, never a core edit.

Third-party components do not need this module: registering under a new
key with :func:`repro.hmc.components.register_component` makes the key
immediately valid in :class:`HMCConfig` (validation consults the live
registry).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

# Importing the built-in implementation modules is what registers them:
# each decorates its classes/factories with @register_component.
import repro.hmc.flow  # noqa: F401  (link_flow: tokens)
import repro.hmc.memory  # noqa: F401  (memory: paged, chunked)
import repro.hmc.topology  # noqa: F401  (topology: chain, ring)
import repro.hmc.vault  # noqa: F401  (vault_scheduler: fifo, round_robin)
import repro.hmc.xbar  # noqa: F401  (xbar: queued, ideal)
from repro.errors import ComponentError, HMCConfigError
from repro.hmc.components import COMPONENTS, register_component

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hmc.components import (
        CrossbarModel,
        LinkFlow,
        MemoryModel,
        TopologyRouter,
        VaultScheduler,
    )
    from repro.hmc.config import HMCConfig
    from repro.hmc.sim import HMCSim

__all__ = [
    "SEAM_FIELDS",
    "validate_selection",
    "build_xbar",
    "build_vault_scheduler",
    "build_link_flow",
    "build_topology",
    "build_memory",
]

#: seam name -> HMCConfig field holding its selected key.  The names
#: coincide by design; the mapping exists so CLI parsing and the lint
#: script iterate seams without hard-coding the correspondence.
SEAM_FIELDS: Dict[str, str] = {
    "xbar": "xbar",
    "vault_scheduler": "vault_scheduler",
    "link_flow": "link_flow",
    "topology": "topology",
    "memory": "memory",
}


@register_component("link_flow", "none")
def _no_flow(config: "HMCConfig") -> None:
    """The baseline datapath (seam key ``none``): no flow-control model
    at all, so sends are never token-limited and no retry state exists —
    the paper's "No Simulation Perturbation" default."""
    return None


@register_component("xbar", "vector")
def _vector_xbar(config: "HMCConfig", dev: int):
    """The numpy flight-table engine (seam key ``vector``).

    A lazy factory rather than a self-registering class, for two
    reasons: numpy is an *optional* dependency (the ``[vector]``
    extra), so the default composition must import clean without it —
    the ``ImportError`` surfaces here as a one-line
    :class:`ComponentError` only when the key is actually selected —
    and :mod:`repro.hmc.vector` may be named nowhere but this module
    (the vector-containment lint pins that).
    """
    try:
        from repro.hmc.vector.engine import VectorXBar
    except ImportError:
        raise ComponentError(
            "xbar='vector' requires numpy, which is not installed — "
            "install the optional extra: pip install 'repro[vector]'"
        ) from None
    return VectorXBar(config, dev)


def validate_selection(seam: str, key: str) -> None:
    """Raise :class:`HMCConfigError` unless ``(seam, key)`` is registered.

    Called from ``HMCConfig.__post_init__`` so a bad selection fails at
    configuration time with the known keys in the message, not deep in
    construction.
    """
    if not COMPONENTS.has(seam, key):
        known = ", ".join(COMPONENTS.keys(seam)) or "<none>"
        raise HMCConfigError(
            f"{SEAM_FIELDS.get(seam, seam)}={key!r} does not name a "
            f"registered {seam} implementation (known keys: {known})"
        )


# -- builders (one per seam, in pipeline order) ------------------------------


def build_xbar(config: "HMCConfig", dev: int) -> "CrossbarModel":
    """The crossbar selected by ``config.xbar`` for device ``dev``."""
    return COMPONENTS.create("xbar", config.xbar, config, dev)


def build_vault_scheduler(config: "HMCConfig") -> "VaultScheduler":
    """A fresh scheduler instance (one per vault) per ``config.vault_scheduler``."""
    return COMPONENTS.create("vault_scheduler", config.vault_scheduler, config)


def build_link_flow(config: "HMCConfig") -> Optional["LinkFlow"]:
    """The flow model selected by ``config.link_flow`` (None for ``none``)."""
    return COMPONENTS.create("link_flow", config.link_flow, config)


def build_topology(sim: "HMCSim") -> "TopologyRouter":
    """The multi-cube router selected by ``sim.config.topology``."""
    return COMPONENTS.create("topology", sim.config.topology, sim)


def build_memory(config: "HMCConfig") -> "MemoryModel":
    """The backing store selected by ``config.memory``."""
    return COMPONENTS.create("memory", config.memory, config.total_bytes)
