"""Multi-device chaining and CUB-based routing.

HMC-Sim 1.0 supported "chaining multiple HMC devices together in a
multitude of different topologies" (§II of the paper); the capability
is carried forward here for the 2.0 packet formats.  Devices are
organized in a daisy chain ordered by cube id.  A request whose ``CUB``
field names a different cube is forwarded hop by hop toward its target
(each hop costs :attr:`Topology.hop_cycles` device cycles), executes
there, and its response makes the mirror-image return trip before
retiring on the link it originally entered.

The delay lines are modelled outside any single device so chained
traffic cannot consume vault-queue slots while in transit — matching
the pass-through routing of the physical link layer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.hmc.components import TopologyRouter, register_component
from repro.hmc.packet import ResponsePacket
from repro.hmc.xbar import Flight

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hmc.sim import HMCSim

__all__ = ["Topology", "ChainTopology", "RingTopology"]


class Topology(TopologyRouter):
    """Multi-cube router: daisy chain (default) or ring.

    In a chain, cube *i* connects to *i±1* and packets take
    ``|target - here|`` hops.  In a ring the last cube also connects
    back to cube 0, so packets take the shorter way around — at most
    ``num_devs // 2`` hops.  Both are instances of the "multitude of
    different topologies" HMC-Sim 1.0 supported.
    """

    def __init__(self, sim: "HMCSim", hop_cycles: int = 2, kind: str = "chain"):
        if hop_cycles < 1:
            raise ValueError("hop_cycles must be >= 1")
        if kind not in ("chain", "ring"):
            raise ValueError(f"unknown topology kind {kind!r}")
        self.sim = sim
        self.hop_cycles = hop_cycles
        self.kind = kind
        #: (ready_cycle, next_dev, link, flight) requests in transit.
        self._rqst_wire: List[Tuple[int, int, int, Flight]] = []
        #: (ready_cycle, next_dev, rsp) responses in transit.
        self._rsp_wire: List[Tuple[int, int, ResponsePacket]] = []
        self.forwarded_requests = 0
        self.forwarded_responses = 0

    def _next_toward(self, here: int, target: int) -> int:
        n = self.sim.config.num_devs
        if self.kind == "ring" and n > 2:
            forward = (target - here) % n
            backward = (here - target) % n
            if forward <= backward:
                return (here + 1) % n
            return (here - 1) % n
        return here + 1 if target > here else here - 1

    def hop_distance(self, a: int, b: int) -> int:
        """Hops between cubes ``a`` and ``b`` under this topology."""
        n = self.sim.config.num_devs
        if self.kind == "ring" and n > 2:
            return min((b - a) % n, (a - b) % n)
        return abs(b - a)

    # -- called by devices ------------------------------------------------------

    def forward_request(self, from_dev: int, flight: Flight, link: int) -> None:
        """Launch a request toward ``flight.pkt.cub`` from ``from_dev``."""
        target = flight.pkt.cub
        nxt = self._next_toward(from_dev, target)
        self.forwarded_requests += 1
        self._rqst_wire.append(
            (self.sim.cycle + self.hop_cycles, nxt, link, flight)
        )

    def forward_response(self, from_dev: int, rsp: ResponsePacket, cycle: int) -> None:
        """Launch a response back toward ``rsp.origin_dev``."""
        nxt = self._next_toward(from_dev, rsp.origin_dev)
        self.forwarded_responses += 1
        self._rsp_wire.append((cycle + self.hop_cycles, nxt, rsp))

    # -- called once per simulation cycle ------------------------------------------

    def clock(self, cycle: int) -> None:
        """Deliver in-transit packets whose hop delay has elapsed."""
        if self._rqst_wire:
            still: List[Tuple[int, int, int, Flight]] = []
            for ready, dev, link, flight in self._rqst_wire:
                if ready > cycle:
                    still.append((ready, dev, link, flight))
                    continue
                device = self.sim.devices[dev]
                if flight.pkt.cub != dev:
                    # Not there yet: relay to the next hop.
                    nxt = self._next_toward(dev, flight.pkt.cub)
                    still.append((cycle + self.hop_cycles, nxt, link, flight))
                    continue
                if not device.accept_forwarded(flight, link):
                    still.append((cycle + 1, dev, link, flight))
            self._rqst_wire = still
        if self._rsp_wire:
            still_r: List[Tuple[int, int, ResponsePacket]] = []
            for ready, dev, rsp in self._rsp_wire:
                if ready > cycle:
                    still_r.append((ready, dev, rsp))
                    continue
                if rsp.origin_dev != dev:
                    nxt = self._next_toward(dev, rsp.origin_dev)
                    still_r.append((cycle + self.hop_cycles, nxt, rsp))
                    continue
                device = self.sim.devices[dev]
                device.links[rsp.origin_link].retire(rsp)
                device.retired_rsps += 1
            self._rsp_wire = still_r

    @property
    def in_transit(self) -> int:
        """Packets currently travelling between cubes."""
        return len(self._rqst_wire) + len(self._rsp_wire)


@register_component("topology", "chain")
class ChainTopology(Topology):
    """Daisy-chain routing (seam key ``chain``, the default): cube *i*
    connects to *i±1*; packets take ``|target - here|`` hops."""

    def __init__(self, sim: "HMCSim"):
        super().__init__(sim, kind="chain")


@register_component("topology", "ring")
class RingTopology(Topology):
    """Ring routing (seam key ``ring``): the last cube connects back to
    cube 0 and packets take the shorter way around — at most
    ``num_devs // 2`` hops."""

    def __init__(self, sim: "HMCSim"):
        super().__init__(sim, kind="ring")
