"""The vector engine: a flight-table crossbar behind the ``xbar`` seam.

:class:`VectorXBar` subclasses the bounded-queue :class:`XBar` so every
inherited code path (queue depths, counters, stall accounting, the
scalar drain) stays available, and adds two *capability hooks* the core
:class:`~repro.hmc.device.Device` discovers with ``getattr``:

``fast_send(device, pkt, link, cycle)``
    Called by ``Device.send`` before the scalar path builds a
    :class:`Flight`.  Returns ``None`` to decline (scalar path runs),
    else the accept/stall bool.  On accept the request becomes a row
    in the :class:`~repro.hmc.vector.flight_table.FlightTable` and the
    row *index* is what sits in the real per-link ``StallQueue`` — all
    push/pop/stall/high-water counters stay live, so ``stats()`` and
    the invariant checker see exactly the scalar engine's numbers.

``device_cycle(device, cycle)``
    Called by ``Device.clock``.  Returns True when it advanced all
    three phases (retire, vault execute, crossbar drain) over table
    rows; False hands the cycle to the scalar phases.

Bit-identity over raw speed: each phase replicates the scalar engine's
visit order, budgets, and counter updates exactly — the engine-parity
goldens, the serial-vs-vector sweep digest, and the differential-oracle
fuzz burn-down all pin this.  Requests *execute* through the one true
``process_rqst`` via a reusable scratch :class:`Flight` whose fields
are loaded from the row, so CMC plugin execution, AMO semantics, and
error-response construction are shared with the scalar engine by
construction, not by copy.

Mode machine
------------
A fresh ``VectorXBar`` is *undecided*.  The first ``Device.send``
decides:

* vector — single cube, no timing/power/flow model, FIFO vault
  scheduler, zero hop cycles, no faults, tracing off;
* scalar — anything else, including a raw queue-API call
  (``inject``/``pop_request``/…) from a driver that manipulates
  flights directly.

Vector mode re-checks the *mutable* conditions (faults attached,
tracing enabled, a timing/power/flow model set post-construction)
every send and every cycle; when one flips, the table **spills** —
every row is rebuilt as a real :class:`Flight` in queue order via
``Device.route_flight`` — and the engine stays scalar from then on.
The handoff is exact: the scalar phases run the very same cycle over
the spilled objects.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.hmc.commands import COMMAND_TABLE_LIST, CommandKind
from repro.hmc.vector.batch import BatchExecutor
from repro.hmc.vector.flight_table import (
    F_INJECT,
    F_ROUTE,
    F_SRC_LINK,
    PHASE_VAULT as _PHASE_VAULT,
    PHASE_XBAR as _PHASE_XBAR,
    FlightTable,
)
from repro.hmc.xbar import Flight, XBar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hmc.config import HMCConfig
    from repro.hmc.device import Device
    from repro.hmc.packet import RequestPacket, ResponsePacket

__all__ = ["VectorXBar"]

_FLOW = CommandKind.FLOW
#: Per-command-code FLOW test, hoisted out of the inject hot path.
_IS_FLOW = tuple(info.kind is _FLOW for info in COMMAND_TABLE_LIST)

_SCALAR, _UNDECIDED, _VECTOR = 0, 1, 2
_MODE_NAMES = ("scalar", "undecided", "vector")


class VectorXBar(XBar):
    """Flight-table batch crossbar + datapath (seam key ``vector``)."""

    def __init__(self, config: "HMCConfig", dev: int):
        super().__init__(config, dev)
        self._mode = _UNDECIDED
        self._table = FlightTable()
        self._device: Optional["Device"] = None
        # One reusable Flight, loaded per row right before execution:
        # process_rqst (and with it CMC dispatch, AMO, error responses)
        # runs unmodified, with no per-request allocation.
        self._scratch = Flight(
            pkt=None,  # type: ignore[arg-type]
            src_link=0,
            inject_cycle=0,
            vault=0,
            bank=0,
            quad=0,
            origin_dev=dev,
        )
        # The columnar vault phase: plans queue bookkeeping in scalar
        # order, executes deferred rows as batched numpy passes.
        self._batch = BatchExecutor(self, self._scratch)

    # -- mode machine ----------------------------------------------------------

    @property
    def mode(self) -> str:
        """``"undecided"``, ``"vector"``, or ``"scalar"`` (tests/debug)."""
        return _MODE_NAMES[self._mode]

    def _dynamic_ok(self, device: "Device") -> bool:
        """The per-cycle re-checked half of the vector gate."""
        sim = device.sim
        return (
            sim.faults is None
            and not sim.tracer.mask
            and sim.timing is None
            and sim.power is None
            and sim.flow is None
        )

    def _static_ok(self, device: "Device") -> bool:
        """The decide-once half of the vector gate."""
        config = device.config
        return (
            device.sim.config.num_devs == 1
            and config.vault_scheduler == "fifo"
            and config.nonlocal_hop_cycles == 0
        )

    def _go_scalar(self, device: Optional["Device"]) -> None:
        if self._mode == _VECTOR and device is not None:
            self._spill(device)
        else:
            self._mode = _SCALAR

    def _spill(self, device: "Device") -> None:
        """Rebuild every table row as a Flight, in place, in order.

        The one-way vector→scalar handoff: queue entries (row indices)
        become :class:`Flight` objects with routing recomputed by
        ``Device.route_flight``, counters untouched — the scalar
        phases take over the same cycle with identical state.
        """
        table = self._table
        pkts = table.pkts
        item = table.item
        dev = device.dev

        def materialize(idx: int) -> Flight:
            row = item(idx)
            return device.route_flight(
                pkts[idx], row[F_SRC_LINK], row[F_INJECT], origin_dev=dev
            )

        for q in self.rqst_queues:
            dq = q._q
            if dq:
                flights = [materialize(i) for i in dq]
                dq.clear()
                dq.extend(flights)
        for vault in device.vaults:
            dq = vault.rqst_queue._q
            if dq:
                flights = [materialize(i) for i in dq]
                dq.clear()
                dq.extend(flights)
        table.clear()
        self._mode = _SCALAR

    # -- capability hooks (discovered by Device with getattr) ------------------

    def fast_send(
        self, device: "Device", pkt: "RequestPacket", link: int, cycle: int
    ) -> Optional[bool]:
        """Vector-mode inject; None declines to the scalar send path."""
        mode = self._mode
        if mode == _SCALAR:
            return None
        if not self._dynamic_ok(device):
            self._go_scalar(device)
            return None
        if mode == _UNDECIDED:
            if not self._static_ok(device):
                self._mode = _SCALAR
                return None
            self._mode = _VECTOR
            self._device = device
        pkt.slid = link
        q = self.rqst_queues[link]
        n = len(q._q) + 1
        if n > q.depth:
            q.stalls += 1
            return False
        addr = pkt.addr
        local = addr & device._cap_mask
        vault = (local >> device._vault_lo) & device._vault_mask
        # FlightTable.alloc, inlined: the send path is the hottest
        # per-request code in the engine, and the call plus argument
        # packing is measurable at depth.
        table = self._table
        free = table._free
        if not free:
            table._grow()
            free = table._free
        idx = free.pop()
        seq = table._seq
        table._seq = seq + 1
        cmd = pkt.cmd
        table.meta[idx] = (
            pkt.tag,
            pkt.cub,
            vault,
            (local >> device._bank_lo) & device._bank_mask,
            device._quads_of_vaults[vault],
            (local >> device._row_lo) & device._row_mask,
            _PHASE_XBAR,
            cycle,
            1 + len(pkt.data) // 16,
            cmd,
            link,
            seq,
            cycle,
            -1 if _IS_FLOW[cmd] else vault,
            addr,
        )
        table.phase[idx] = _PHASE_XBAR
        table.pkts[idx] = pkt
        table.active += 1
        q._q.append(idx)
        q.pushes += 1
        if n > q.high_water:
            q.high_water = n
        self.rqst_occ += 1
        return True

    def device_cycle(self, device: "Device", cycle: int) -> bool:
        """Run all three device phases over table rows; False = scalar."""
        if self._mode != _VECTOR:
            return False
        if not self._dynamic_ok(device):
            self._spill(device)
            return False
        self._retire_phase(device, cycle)
        self._batch.vault_phase(device, cycle)
        self._drain_phase(device, cycle)
        return True

    # -- the three phases, in scalar visit order -------------------------------

    def _retire_phase(self, device: "Device", cycle: int) -> None:
        # Scalar twin: Device._phase_retire.  Gate guarantees a single
        # cube (no topology return trips), no response faults, and
        # tracing off, so retirement is the pure rate-limited move.
        if not self.rsp_occ:
            return
        rate = self.config.link_rsp_rate
        rsp_queues = self.rsp_queues
        for link in device.links:
            q = rsp_queues[link.link_id]
            dq = q._q
            if not dq:
                continue
            n = min(rate, len(dq))
            retired = link.retired
            flits = 0
            for _ in range(n):
                rsp = dq.popleft()
                rsp.retire_cycle = cycle
                retired.append(rsp)
                flits += 1 + len(rsp.data) // 16
            q.pops += n
            link.rsps_out += n
            link.flits_out += flits
            self.rsp_occ -= n
            device.retired_rsps += n

    def _drain_phase(self, device: "Device", cycle: int) -> None:
        # Scalar twin: Device._phase_xbar_drain with no flow model and
        # zero hop cycles (both pinned by the gate): each link's queue
        # drains fully, in ascending link order, blocking only on a
        # full vault queue.
        if not self.rqst_occ:
            return
        rqst_queues = self.rqst_queues
        vaults = device.vaults
        table = self._table
        meta = table.meta
        phase = table.phase
        active_vaults = device._active_vaults
        # Per-row counter updates are batched: queue.pops/rqst_occ per
        # link after its walk, vault pushes/high-water per touched
        # vault at the end.  Occupancy grows monotonically during the
        # drain (the vault phase already ran), so the final length IS
        # the cycle's high-water mark.
        pushed: dict = {}
        for link_id in range(self.config.num_links):
            queue = rqst_queues[link_id]
            dq = queue._q
            npop = 0
            nflow = 0
            while dq:
                idx = dq[0]
                route = meta[idx][F_ROUTE]
                if route < 0:
                    # Flow packets are consumed at the link layer.
                    dq.popleft()
                    npop += 1
                    nflow += 1
                    table.free_row(idx)
                    continue
                vq = vaults[route].rqst_queue
                if len(vq._q) >= vq.depth:
                    vq.stalls += 1
                    break
                dq.popleft()
                npop += 1
                vq._q.append(idx)
                if route in pushed:
                    pushed[route] += 1
                else:
                    pushed[route] = 1
                phase[idx] = _PHASE_VAULT
            if npop:
                queue.pops += npop
                self.rqst_occ -= npop
            if nflow:
                device.flow_packets += nflow
        for route, k in pushed.items():
            vq = vaults[route].rqst_queue
            vq.pushes += k
            n = len(vq._q)
            if n > vq.high_water:
                vq.high_water = n
            active_vaults.add(route)

    # -- raw queue API: decide scalar / spill on first touch -------------------
    # The request-side accessors hand out Flight objects; a driver (or
    # test) using them while rows are in flight gets the spilled state.
    # The response side always holds real ResponsePackets, so the
    # inherited push_response/pop_response need no guard.

    def inject(self, link: int, flight: Flight) -> bool:
        if self._mode != _SCALAR:
            self._go_scalar(self._device)
        return super().inject(link, flight)

    def head_request(self, link: int) -> Optional[Flight]:
        if self._mode != _SCALAR:
            self._go_scalar(self._device)
        return super().head_request(link)

    def pop_request(self, link: int) -> Optional[Flight]:
        if self._mode != _SCALAR:
            self._go_scalar(self._device)
        return super().pop_request(link)

    def unpop_request(self, link: int, flight: Flight) -> None:
        if self._mode != _SCALAR:
            self._go_scalar(self._device)
        super().unpop_request(link, flight)

    # -- capabilities for observers --------------------------------------------

    def resolve_tag(self, entry: int) -> tuple:
        """``(cub, tag)`` of a queued row index (invariant checker)."""
        return self._table.cub_tag(entry)

    def inflight_snapshot(self) -> List[dict]:
        """Live flight-table rows in allocation order (tests/export)."""
        return self._table.snapshot()
