"""Columnar vault execution: the vector engine's batch datapath.

:class:`BatchExecutor` replaces the per-row scratch-``Flight`` walk of
the original vector vault phase with a **plan / execute / dispatch**
split over the ready rows of the
:class:`~repro.hmc.vector.flight_table.FlightTable`:

1. **Plan** walks the active vaults in the exact scalar visit order —
   pending-response flush first, then the head-of-deque budget walk
   with bank-conflict rotation — doing *all* queue bookkeeping (pops,
   stalls, high-water, per-cycle response budget, park decisions) on
   int row handles, but deferring request *execution*.  Response-queue
   space is tracked as planned occupancy so park decisions come out
   bit-identical to the scalar engine's post-execute ``push_response``
   check.
2. **Execute** partitions each deferred run of rows by command kind and
   executes the non-CMC kinds columnar-ly: read addresses gather
   through a :class:`ColumnarMemory` (numpy views over the paged
   backing store), writes scatter their payloads page-grouped, and the
   simple AMO families (add/inc/bitwise/swap/bwr) compute on the
   gathered operand matrix as ``<u8`` limb arithmetic.  Mode-register
   ops and the conditional atomics (CAS/EQ) run per-row; CMC plugin
   commands execute at their exact plan position through the one true
   ``process_rqst`` via the engine's scratch ``Flight``, with every
   earlier deferred row flushed first so memory ordering is preserved.
   A batch whose row footprints overlap (any writer) falls back to
   ordered per-row execution — same results, no reordering hazard.
3. **Dispatch** replays the planned response pushes in plan order into
   the real crossbar response queues (counters identical to the scalar
   push sequence) and parks blocked responses in
   ``vault._pending_rsp`` — as a directly-constructed :class:`Flight`
   carrying the row's already-decoded routing, the cheap twin of
   ``Device.route_flight``.

Nothing reads the response queues between plan and dispatch inside a
device cycle (retirement ran first), so the deferred pushes observe
exactly the state the scalar engine's interleaved pushes would.
Bit-identity is pinned by the engine-parity goldens, the sweep digest,
and the oracle fuzz burn-down (including the ``deep_queue`` profile).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.errors import HMCAddressError, HMCSimError
from repro.hmc.amo import execute_amo, is_amo
from repro.hmc.commands import (
    COMMAND_TABLE_LIST,
    CommandKind,
    hmc_response_t,
    hmc_rqst_t,
)
from repro.hmc.memory import MemoryView
from repro.hmc.packet import ResponsePacket
from repro.hmc.vault import (
    ERRSTAT_ADDRESS,
    ERRSTAT_GENERIC,
    process_rqst,
)
from repro.hmc.vector.flight_table import (
    F_ADDR,
    F_BANK,
    F_CMD,
    F_FLITS,
    F_INJECT,
    F_QUAD,
    F_ROW,
    F_SRC_LINK,
    F_VAULT,
    PHASE_FREE,
)
from repro.hmc.xbar import Flight

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hmc.device import Device
    from repro.hmc.vector.engine import VectorXBar

__all__ = ["BatchExecutor", "ColumnarMemory"]

_RSP_ERROR = int(hmc_response_t.RSP_ERROR)

# -- per-command classification, precomputed over the dense code space ---------

K_READ, K_WRITE, K_MODE_RD, K_MODE_WR, K_AMO, K_CMC, K_OTHER = range(7)


def _classify(info) -> int:
    kind = info.kind
    if kind is CommandKind.READ:
        return K_READ
    if kind is CommandKind.WRITE or kind is CommandKind.POSTED_WRITE:
        return K_WRITE
    if kind is CommandKind.MODE:
        return K_MODE_RD if info.rqst_name == "MD_RD" else K_MODE_WR
    if kind is CommandKind.CMC:
        return K_CMC
    if is_amo(info.code):
        return K_AMO
    return K_OTHER


_KIND = tuple(_classify(info) for info in COMMAND_TABLE_LIST)
#: None marks CMC codes (posted-ness resolved by the plugin registry).
_HAS_RSP = tuple(
    None if k == K_CMC else not info.posted
    for k, info in zip(_KIND, COMMAND_TABLE_LIST)
)
_RSP_CMD = tuple(info.rsp_cmd_code for info in COMMAND_TABLE_LIST)
_RSP_BYTES = tuple(info.rsp_data_bytes or 0 for info in COMMAND_TABLE_LIST)
_RQ_BYTES = tuple(info.rqst_data_bytes or 0 for info in COMMAND_TABLE_LIST)

_R = hmc_rqst_t
#: Memory bytes touched by each atomic (operand footprint).
_AMO_FOOT: Dict[int, int] = {}
for _c in (_R.TWOADD8, _R.P_2ADD8, _R.TWOADDS8R, _R.ADD16, _R.P_ADD16,
           _R.ADDS16R, _R.XOR16, _R.OR16, _R.NOR16, _R.AND16, _R.NAND16,
           _R.CASGT16, _R.CASLT16, _R.CASZERO16, _R.EQ16, _R.SWAP16):
    _AMO_FOOT[int(_c)] = 16
for _c in (_R.INC8, _R.P_INC8, _R.BWR, _R.P_BWR, _R.BWR8R,
           _R.CASEQ8, _R.CASGT8, _R.CASLT8, _R.EQ8):
    _AMO_FOOT[int(_c)] = 8

#: Footprint per command code: read = response bytes, write = dynamic
#: (payload length, -1 here), atomic = operand bytes, rest = 0.
_FOOT = tuple(
    _RSP_BYTES[c] if _KIND[c] == K_READ
    else (-1 if _KIND[c] == K_WRITE else _AMO_FOOT.get(c, 0))
    for c in range(len(COMMAND_TABLE_LIST))
)

#: The unconditional read-modify-write atomics with a columnar kernel.
_AMO_ADD2 = frozenset(map(int, (_R.TWOADD8, _R.P_2ADD8, _R.TWOADDS8R)))
_AMO_ADD16 = frozenset(map(int, (_R.ADD16, _R.P_ADD16, _R.ADDS16R)))
_AMO_INC = frozenset(map(int, (_R.INC8, _R.P_INC8)))
_AMO_BOOL = frozenset(map(int, (_R.XOR16, _R.OR16, _R.NOR16, _R.AND16, _R.NAND16)))
_AMO_BWR = frozenset(map(int, (_R.BWR, _R.P_BWR, _R.BWR8R)))
_AMO_SWAP = frozenset((int(_R.SWAP16),))
_AMO_COL = _AMO_ADD2 | _AMO_ADD16 | _AMO_INC | _AMO_BOOL | _AMO_BWR | _AMO_SWAP
#: Fetch-op variants returning the original 16-byte operand.
_AMO_RET16 = frozenset(map(int, (_R.TWOADDS8R, _R.ADDS16R, _R.XOR16, _R.OR16,
                                 _R.NOR16, _R.AND16, _R.NAND16, _R.SWAP16)))
_AMO_RET8 = frozenset((int(_R.BWR8R),))  # original 8 bytes, zero-padded

#: Below this batch width the numpy kernels lose to direct access.
_COL_MIN = 4

_ZERO8 = bytes(8)

# Plan-entry dispositions (entry = [disp, src, rsp, pkt, row, vault]).
_D_READY = 0        # rsp materialized at plan time (flush / CMC): push
_D_EXEC = 1         # deferred execute: push the synthesized response
_D_EXEC_PARK = 2    # deferred execute: park the response in the vault
_D_EXEC_POSTED = 3  # deferred execute: no response
_D_READY_PARK = 4   # rsp materialized at plan time (CMC): park

_ZEROS: Dict[int, bytes] = {}


def _zeros(size: int) -> bytes:
    blk = _ZEROS.get(size)
    if blk is None:
        blk = _ZEROS[size] = bytes(size)
    return blk


class ColumnarMemory:
    """Batch gather/scatter over a :class:`MemoryView`'s paged store.

    Rows are grouped by backing page; pages holding several rows move
    through one numpy fancy-index pass over a ``frombuffer`` view of
    the page (``bytearray`` buffers are writable, so scatters mutate
    the store in place), singleton pages take the direct slice path,
    and cold pages read as zeros without materializing.  Callers
    bounds-check and exclude page-crossing rows first; ``read1`` /
    ``write1`` are the bounds-checked single-row twins used by the
    ordered fallback.
    """

    __slots__ = ("view", "capacity", "_base", "_pages", "_shift", "_psize", "_pmask")

    def __init__(self, view: MemoryView):
        self.view = view
        self.capacity = view.capacity
        self._base = view._base
        self._pages = view._pages
        self._shift = view._shift
        self._psize = view._psize
        self._pmask = view._pmask

    @property
    def page_size(self) -> int:
        return self._psize

    @property
    def page_mask(self) -> int:
        return self._pmask

    def read1(self, addr: int, nbytes: int) -> bytes:
        """Bounds-checked single read (the ``MemoryView.read`` twin)."""
        if addr < 0 or addr + nbytes > self.capacity:
            raise HMCAddressError(
                f"access [{addr:#x}, {addr + nbytes:#x}) outside "
                f"view capacity {self.capacity:#x}"
            )
        a = self._base + addr
        off = a & self._pmask
        if off + nbytes <= self._psize:
            page = self._pages.get(a >> self._shift)
            if page is None:
                return bytes(nbytes)
            return bytes(page[off : off + nbytes])
        return self.view.read(addr, nbytes)

    def write1(self, addr: int, data: bytes) -> None:
        """Bounds-checked single write (the ``MemoryView.write`` twin)."""
        nbytes = len(data)
        if addr < 0 or addr + nbytes > self.capacity:
            raise HMCAddressError(
                f"access [{addr:#x}, {addr + nbytes:#x}) outside "
                f"view capacity {self.capacity:#x}"
            )
        a = self._base + addr
        off = a & self._pmask
        if off + nbytes <= self._psize:
            page_no = a >> self._shift
            page = self._pages.get(page_no)
            if page is None:
                page = bytearray(self._psize)
                self._pages[page_no] = page
            page[off : off + nbytes] = data
            return
        self.view.write(addr, data)

    def gather(self, addrs: List[int], size: int) -> List[bytes]:
        """Batch read: per-address ``bytes`` of length ``size``.

        Addresses must be in bounds and not cross a page boundary.
        Direct ``bytearray`` slicing is already memcpy-speed per row —
        numpy fancy-indexing measured *slower* at realistic batch
        widths — so the win here is the hoisted page/offset arithmetic
        and the zero-copy cold-page path.
        """
        pages = self._pages
        shift = self._shift
        pmask = self._pmask
        base = self._base
        cold = _zeros(size)
        out: List[bytes] = []
        append = out.append
        for addr in addrs:
            a = addr + base
            page = pages.get(a >> shift)
            if page is None:
                append(cold)
            else:
                off = a & pmask
                append(bytes(page[off : off + size]))
        return out

    def scatter(self, items: List[tuple], size: int) -> None:
        """Batch write of ``(addr, data)`` pairs, all ``size`` bytes.

        Addresses must be in bounds, non-overlapping, and not cross a
        page boundary.
        """
        pages = self._pages
        shift = self._shift
        pmask = self._pmask
        psize = self._psize
        base = self._base
        for addr, data in items:
            a = addr + base
            page_no = a >> shift
            page = pages.get(page_no)
            if page is None:
                page = bytearray(psize)
                pages[page_no] = page
            off = a & pmask
            page[off : off + size] = data

    def scatter_mat(self, addrs: List[int], mat: np.ndarray) -> None:
        """Batch write of matrix rows (same constraints as scatter)."""
        size = mat.shape[1]
        blob = memoryview(mat.tobytes())
        self.scatter(
            [(a, blob[i * size : (i + 1) * size]) for i, a in enumerate(addrs)],
            size,
        )


class BatchExecutor:
    """The columnar vault phase of :class:`VectorXBar`."""

    __slots__ = ("_xbar", "_scratch", "_col")

    def __init__(self, xbar: "VectorXBar", scratch: Flight):
        self._xbar = xbar
        self._scratch = scratch
        self._col: Optional[ColumnarMemory] = None

    # -- plan + dispatch -------------------------------------------------------

    def vault_phase(self, device: "Device", cycle: int) -> None:
        """Scalar twin of ``Device._phase_vault_execute`` over table rows."""
        active = device._active_vaults
        if not active:
            return
        col = self._col
        if col is None or col.view is not device._mem:
            col = self._col = ColumnarMemory(device._mem)
        xbar = self._xbar
        vaults = device.vaults
        rate = device.config.vault_rsp_rate
        table = xbar._table
        pkts = table.pkts
        meta = table.meta
        freed: List[int] = []
        rsp_queues = xbar.rsp_queues
        depth = rsp_queues[0].depth
        planned = [len(q._q) for q in rsp_queues]
        plan: List[list] = []
        append = plan.append
        pend = 0  # first plan index whose execution is still deferred
        has_rsp_of = _HAS_RSP
        for index in sorted(active):
            vault = vaults[index]
            pending = vault._pending_rsp
            if pending is not None:
                # Vault.flush_pending with the push deferred to dispatch.
                src = pending[0].src_link
                if planned[src] >= depth:
                    rsp_queues[src].stalls += 1
                    vault.response_stalls += 1
                    continue
                planned[src] += 1
                append([_D_READY, src, pending[1], None, None, None])
                vault._pending_rsp = None
                vault.processed += 1
            queue = vault.rqst_queue
            dq = queue._q
            n0 = len(dq)
            budget = rate
            visited = 0
            kept = 0
            npop = 0
            nproc = 0
            parked = False
            banks = vault.banks
            # Per-row bookkeeping is batched: bank occupancy
            # (accesses/row_hits/open_row/busy_until) is
            # order-insensitive within the cycle — the first touch
            # already leaves ``busy_until == cycle``, so later
            # same-cycle touches pass the busy check either way — and
            # queue.pops / vault.processed / row frees are only
            # observable between phases.  All are applied once after
            # the walk.
            touches: dict = {}
            freed_append = freed.append
            while visited < n0:
                if budget <= 0:
                    # Response port exhausted; the rest wait in place.
                    if kept:
                        dq.rotate(kept)
                    break
                idx = dq[0]
                row = meta[idx]
                bank_idx = row[F_BANK]
                if cycle < banks[bank_idx].busy_until:
                    # Only reachable via restored bank state: the
                    # baseline occupancy below never leaves a bank
                    # busy past its own cycle.
                    banks[bank_idx].conflicts += 1
                    vault.bank_conflicts += 1
                    dq.rotate(-1)
                    kept += 1
                    visited += 1
                    continue
                # _occupy, baseline model: completes within the cycle.
                if bank_idx in touches:
                    touches[bank_idx] += 1
                else:
                    touches[bank_idx] = 1

                pkt = pkts[idx]
                cmd = row[F_CMD]
                src = row[F_SRC_LINK]
                has = has_rsp_of[cmd]
                if has is None:
                    # CMC plugin: flush the deferred batch so memory
                    # ordering holds, then execute at this exact plan
                    # position through process_rqst.
                    n = len(plan)
                    if pend < n:
                        self._execute(plan, pend, n, device, col)
                    rsp = self._run_cmc(device, pkt, row, cycle)
                    dq.popleft()
                    npop += 1
                    freed_append(idx)
                    if rsp is None:
                        nproc += 1
                        visited += 1
                        pend = len(plan)
                        continue
                    if planned[src] >= depth:
                        rsp_queues[src].stalls += 1
                        vault.response_stalls += 1
                        append([_D_READY_PARK, src, rsp, pkt, row, vault])
                        pend = len(plan)
                        parked = True
                        if kept:
                            dq.rotate(kept)
                        break
                    planned[src] += 1
                    budget -= 1
                    append([_D_READY, src, rsp, None, None, None])
                    pend = len(plan)
                    nproc += 1
                    visited += 1
                    continue
                if has:
                    if planned[src] >= depth:
                        # Response path full: park after execution, as
                        # the scalar post-execute push check would.
                        rsp_queues[src].stalls += 1
                        vault.response_stalls += 1
                        append([_D_EXEC_PARK, src, None, pkt, row, vault])
                        parked = True
                        dq.popleft()
                        npop += 1
                        freed_append(idx)
                        if kept:
                            dq.rotate(kept)
                        break
                    planned[src] += 1
                    budget -= 1
                    append([_D_EXEC, src, None, pkt, row, None])
                else:
                    append([_D_EXEC_POSTED, -1, None, pkt, row, None])
                dq.popleft()
                npop += 1
                nproc += 1
                freed_append(idx)
                visited += 1
            if npop:
                queue.pops += npop
            if nproc:
                vault.processed += nproc
            for bank_idx, k in touches.items():
                bank = banks[bank_idx]
                bank.accesses += k
                bank.row_hits += k
                bank.open_row = -1
                bank.busy_until = cycle
            if not parked and not dq and vault._pending_rsp is None:
                active.discard(index)
        n = len(plan)
        if pend < n:
            self._execute(plan, pend, n, device, col)
        if freed:
            # Deferred free_row: plan entries hold the row tuples and
            # packets themselves, so releasing the indices is pure
            # bookkeeping nothing in this phase reads back.
            phase = table.phase
            for i in freed:
                phase[i] = PHASE_FREE
                pkts[i] = None
                meta[i] = None
            table._free.extend(freed)
            table.active -= len(freed)
        # Dispatch: replay pushes and parks in plan order.
        dev = device.dev
        rsp_pushed = 0
        for e in plan:
            disp = e[0]
            if disp == _D_EXEC_POSTED:
                continue
            if disp <= _D_EXEC:  # _D_READY or _D_EXEC
                q = rsp_queues[e[1]]
                qq = q._q
                qq.append(e[2])
                q.pushes += 1
                n2 = len(qq)
                if n2 > q.high_water:
                    q.high_water = n2
                rsp_pushed += 1
            else:  # _D_EXEC_PARK or _D_READY_PARK
                pkt = e[3]
                row = e[4]
                e[5]._pending_rsp = (
                    Flight(
                        pkt=pkt,
                        src_link=e[1],
                        inject_cycle=row[F_INJECT],
                        vault=row[F_VAULT],
                        bank=row[F_BANK],
                        quad=row[F_QUAD],
                        origin_dev=dev,
                        info=COMMAND_TABLE_LIST[pkt.cmd],
                        row=row[F_ROW],
                    ),
                    e[2],
                )
        xbar.rsp_occ += rsp_pushed

    def _run_cmc(self, device: "Device", pkt, row, cycle: int):
        scratch = self._scratch
        scratch.pkt = pkt
        scratch.src_link = row[F_SRC_LINK]
        scratch.inject_cycle = row[F_INJECT]
        scratch.vault = row[F_VAULT]
        scratch.bank = row[F_BANK]
        scratch.quad = row[F_QUAD]
        scratch.row = row[F_ROW]
        scratch.info = COMMAND_TABLE_LIST[pkt.cmd]
        return process_rqst(device, scratch, cycle)

    # -- deferred execution ----------------------------------------------------

    def _execute(
        self, plan: List[list], start: int, end: int, device: "Device",
        col: ColumnarMemory,
    ) -> None:
        """Execute deferred plan entries, columnar-ly where safe."""
        if end - start == 1:
            e = plan[start]
            if e[0] != _D_READY:
                e[2] = self._exec_one(e, device, col)
            return
        reads: List[list] = []
        writes: List[list] = []
        amos: List[list] = []
        modes: List[list] = []
        intervals: List[tuple] = []
        writer = False
        kind_of = _KIND
        for i in range(start, end):
            e = plan[i]
            if e[0] == _D_READY:
                # Pending-flush response: executed last cycle, the rsp
                # is already materialized and it touches no memory now.
                continue
            row = e[4]
            cmd = row[F_CMD]
            k = kind_of[cmd]
            if k == K_READ:
                reads.append(e)
                addr = row[F_ADDR]
                intervals.append((addr, addr + _RSP_BYTES[cmd]))
            elif k == K_WRITE:
                writes.append(e)
                writer = True
                addr = row[F_ADDR]
                intervals.append((addr, addr + (row[F_FLITS] - 1) * 16))
            elif k == K_AMO:
                amos.append(e)
                writer = True
                addr = row[F_ADDR]
                intervals.append((addr, addr + _FOOT[cmd]))
            else:
                # Mode registers (and the unreachable OTHER) touch no
                # memory: always order-safe against the memory kinds.
                modes.append(e)
        if writer and len(intervals) > 1:
            intervals.sort()
            prev = intervals[0][1]
            for s0, e0 in intervals[1:]:
                if s0 < prev:
                    # Overlapping footprints with a writer present:
                    # execute the whole run in exact plan order.
                    for i in range(start, end):
                        e = plan[i]
                        if e[0] != _D_READY:
                            e[2] = self._exec_one(e, device, col)
                    return
                if e0 > prev:
                    prev = e0
        if reads:
            self._exec_reads(reads, device, col)
        if writes:
            self._exec_writes(writes, device, col)
        if amos:
            self._exec_amos(amos, device, col)
        for e in modes:
            e[2] = self._exec_one(e, device, col)

    def _exec_one(self, e: list, device: "Device", col: ColumnarMemory):
        """Execute one entry with process_rqst's exact dispatch/errors."""
        pkt = e[3]
        row = e[4]
        cmd = row[F_CMD]
        k = _KIND[cmd]
        addr = row[F_ADDR]
        data = b""
        errstat = 0
        try:
            if k == K_READ:
                data = col.read1(addr, _RSP_BYTES[cmd])
            elif k == K_WRITE:
                col.write1(addr, pkt.data)
            elif k == K_AMO:
                result = execute_amo(device._mem, addr, cmd, pkt.data)
                data = result.rsp_data
                errstat = result.errstat
            elif k == K_MODE_RD:
                value = device.registers.read(addr)
                data = value.to_bytes(8, "little") + _ZERO8
            elif k == K_MODE_WR:
                device.registers.write(addr, int.from_bytes(pkt.data[:8], "little"))
            else:  # pragma: no cover - command table is exhaustive
                raise HMCSimError(f"unhandled command {cmd}")
        except HMCAddressError:
            return self._error(e, device, ERRSTAT_ADDRESS)
        except HMCSimError:
            return self._error(e, device, ERRSTAT_GENERIC)
        if e[0] == _D_EXEC_POSTED:
            return None
        return ResponsePacket(
            _RSP_CMD[cmd], pkt.tag, device.dev, e[1], data, 0, 0, 0,
            pkt.pb, errstat, 0, -1, row[F_INJECT], device.dev, e[1],
        )

    def _error(self, e: list, device: "Device", errstat: int):
        """The _error_response twin; posted errors are dropped."""
        if e[0] == _D_EXEC_POSTED:
            return None
        pkt = e[3]
        return ResponsePacket(
            _RSP_ERROR, pkt.tag, device.dev, e[1], b"", 0, 0, 0,
            0, errstat, 0, -1, e[4][F_INJECT], device.dev, e[1],
        )

    def _exec_reads(
        self, entries: List[list], device: "Device", col: ColumnarMemory
    ) -> None:
        cap = col.capacity
        pmask = col.page_mask
        psize = col.page_size
        pages = col._pages
        shift = col._shift
        base = col._base
        dev = device.dev
        rsp_bytes = _RSP_BYTES
        rsp_cmd = _RSP_CMD
        for e in entries:
            row = e[4]
            cmd = row[F_CMD]
            size = rsp_bytes[cmd]
            addr = row[F_ADDR]
            if addr + size > cap:
                e[2] = self._error(e, device, ERRSTAT_ADDRESS)
                continue
            a = addr + base
            off = a & pmask
            if off + size > psize:
                data = col.view.read(addr, size)
            else:
                page = pages.get(a >> shift)
                data = (
                    _zeros(size) if page is None else bytes(page[off : off + size])
                )
            pkt = e[3]
            e[2] = ResponsePacket(
                rsp_cmd[cmd], pkt.tag, dev, e[1], data,
                0, 0, 0, pkt.pb, 0, 0, -1, row[F_INJECT], dev, e[1],
            )

    def _exec_writes(
        self, entries: List[list], device: "Device", col: ColumnarMemory
    ) -> None:
        cap = col.capacity
        pmask = col.page_mask
        psize = col.page_size
        pages = col._pages
        shift = col._shift
        base = col._base
        dev = device.dev
        rsp_cmd = _RSP_CMD
        for e in entries:
            pkt = e[3]
            row = e[4]
            data = pkt.data
            nb = len(data)
            addr = row[F_ADDR]
            if addr + nb > cap:
                e[2] = self._error(e, device, ERRSTAT_ADDRESS)
                continue
            a = addr + base
            off = a & pmask
            if off + nb > psize:
                col.view.write(addr, data)
            else:
                page_no = a >> shift
                page = pages.get(page_no)
                if page is None:
                    page = bytearray(psize)
                    pages[page_no] = page
                page[off : off + nb] = data
            if e[0] != _D_EXEC_POSTED:
                e[2] = ResponsePacket(
                    rsp_cmd[row[F_CMD]], pkt.tag, dev, e[1], b"",
                    0, 0, 0, pkt.pb, 0, 0, -1, row[F_INJECT], dev, e[1],
                )

    def _exec_amos(
        self, entries: List[list], device: "Device", col: ColumnarMemory
    ) -> None:
        cap = col.capacity
        pmask = col.page_mask
        psize = col.page_size
        groups: Dict[int, List[list]] = {}
        for e in entries:
            row = e[4]
            cmd = row[F_CMD]
            addr = row[F_ADDR]
            foot = _FOOT[cmd]
            if (
                cmd in _AMO_COL
                and len(e[3].data) == _RQ_BYTES[cmd]
                and addr + foot <= cap
                and (addr & pmask) + foot <= psize
            ):
                groups.setdefault(cmd, []).append(e)
            else:
                # Conditional atomics (CAS/EQ), bad bounds, mis-sized
                # payloads, page crossers: the exact scalar path.
                e[2] = self._exec_one(e, device, col)
        for cmd, es in groups.items():
            if len(es) < _COL_MIN:
                for e in es:
                    e[2] = self._exec_one(e, device, col)
            else:
                self._amo_columnar(cmd, es, device, col)

    def _amo_columnar(
        self, cmd: int, es: List[list], device: "Device", col: ColumnarMemory
    ) -> None:
        """Batch kernel for the unconditional RMW atomics.

        Little-endian ``<u8`` limb arithmetic reproduces the signed
        big-int semantics of :mod:`repro.hmc.amo` bit-for-bit: wrapping
        unsigned adds equal signed adds mod 2**64, and the 128-bit add
        propagates the low-limb carry explicitly.
        """
        foot = _FOOT[cmd]
        n = len(es)
        addrs = [e[4][F_ADDR] for e in es]
        parts = col.gather(addrs, foot)
        ob = b"".join(parts)
        o = np.frombuffer(ob, dtype="<u8").reshape(n, foot // 8)
        if cmd in _AMO_INC:
            new = o + np.uint64(1)
        else:
            pl = np.frombuffer(
                b"".join(e[3].data for e in es), dtype=np.uint8
            ).reshape(n, 16).view("<u8")
            if cmd in _AMO_ADD2:
                new = o + pl
            elif cmd in _AMO_ADD16:
                lo = o[:, 0] + pl[:, 0]
                carry = (lo < o[:, 0]).astype(np.uint64)
                hi = o[:, 1] + pl[:, 1] + carry
                new = np.stack((lo, hi), axis=1)
            elif cmd in _AMO_BWR:
                d = pl[:, 0]
                m = pl[:, 1]
                new = ((o[:, 0] & ~m) | (d & m))[:, None]
            elif cmd in _AMO_SWAP:
                new = pl.copy()
            else:  # _AMO_BOOL
                if cmd == int(_R.XOR16):
                    new = o ^ pl
                elif cmd == int(_R.OR16):
                    new = o | pl
                elif cmd == int(_R.AND16):
                    new = o & pl
                elif cmd == int(_R.NOR16):
                    new = ~(o | pl)
                else:  # NAND16
                    new = ~(o & pl)
        col.scatter_mat(addrs, np.ascontiguousarray(new).view(np.uint8))
        dev = device.dev
        ret16 = cmd in _AMO_RET16
        ret8 = cmd in _AMO_RET8
        rsp_cmd = _RSP_CMD[cmd]
        for i, e in enumerate(es):
            if e[0] == _D_EXEC_POSTED:
                continue
            if ret16:
                data = parts[i]
            elif ret8:
                data = parts[i] + _ZERO8
            else:
                data = b""
            pkt = e[3]
            row = e[4]
            e[2] = ResponsePacket(
                rsp_cmd, pkt.tag, dev, e[1], data, 0, 0, 0,
                pkt.pb, 0, 0, -1, row[F_INJECT], dev, e[1],
            )
