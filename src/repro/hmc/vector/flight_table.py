"""Flight table: in-flight requests as columnar rows plus sidecars.

One row per in-flight request packet.  The columns hold everything the
datapath needs to route and execute the request — the decoded address
(vault/bank/quad/row), the raw request address, the command code (an
index into ``COMMAND_TABLE_LIST``), the link and cycle it arrived on, a
global allocation sequence number (the FIFO tie-breaker), and a phase
tag — so the per-cycle engine never touches the Python packet object
until the request actually executes.  The packet itself (and with it
the CMC payload, data, and wire encoding) lives in the parallel
``pkts`` sidecar list under the same index.

Hot-path access pattern, chosen after measuring per-element structured
access costs:

* allocation stores the whole row as **one** plain tuple (``meta``
  sidecar) — numpy structured scalar writes cost ~1µs/row, an order
  of magnitude more than a list store, so the hot path never touches
  the array;
* execution reads the row back by plain list index — field positions
  are the ``F_*`` constants;
* phase transitions write one int into the ``phase`` sidecar.

Bulk operations — snapshots for tests, the invariant checker, spill
audits — materialize the ``ROW_DTYPE`` structured array on demand via
:meth:`FlightTable.to_array`, which is where numpy still pays: one
vectorized build per snapshot instead of per-row bookkeeping per
cycle.  The batch executor's columnar passes work on the *memory*
arrays (see :mod:`repro.hmc.vector.batch`), not on this table.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "FlightTable",
    "PHASE_FREE",
    "PHASE_XBAR",
    "PHASE_VAULT",
    "F_TAG",
    "F_CUB",
    "F_VAULT",
    "F_BANK",
    "F_QUAD",
    "F_ROW",
    "F_PHASE",
    "F_READY",
    "F_FLITS",
    "F_CMD",
    "F_SRC_LINK",
    "F_SEQ",
    "F_INJECT",
    "F_ROUTE",
    "F_ADDR",
]

#: Row lifecycle: free slot -> queued in a crossbar link -> queued in a
#: vault.  The authoritative position is the queue holding the index;
#: the phase sidecar exists for snapshots, spill audits, and tests.
PHASE_FREE, PHASE_XBAR, PHASE_VAULT = 0, 1, 2

ROW_DTYPE = np.dtype(
    [
        ("tag", np.int32),
        ("cub", np.int16),
        ("vault", np.int16),
        ("bank", np.int16),
        ("quad", np.int16),
        ("row", np.int32),
        ("phase", np.int8),
        ("ready_cycle", np.int64),
        ("flits", np.int16),
        ("cmd", np.int16),  # index into COMMAND_TABLE_LIST
        ("src_link", np.int16),
        ("seq", np.int64),  # global allocation order: the FIFO tie-breaker
        ("inject_cycle", np.int64),
        ("route", np.int16),  # target vault, or -1 for FLOW packets
        ("addr", np.int64),  # raw request address (34-bit, unmasked)
    ]
)

# Tuple positions of ``FlightTable.item(idx)``, in ROW_DTYPE order.
(
    F_TAG,
    F_CUB,
    F_VAULT,
    F_BANK,
    F_QUAD,
    F_ROW,
    F_PHASE,
    F_READY,
    F_FLITS,
    F_CMD,
    F_SRC_LINK,
    F_SEQ,
    F_INJECT,
    F_ROUTE,
    F_ADDR,
) = range(len(ROW_DTYPE.names))


class FlightTable:
    """Fixed-capacity (doubling) pool of flight rows plus packet sidecar."""

    __slots__ = ("meta", "pkts", "phase", "active", "_free", "_seq")

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("flight table capacity must be >= 1")
        #: Whole row as one plain tuple per live index (``F_*`` order).
        self.meta: List[Optional[Tuple]] = [None] * capacity
        self.pkts: List[Optional[object]] = [None] * capacity
        #: Current lifecycle phase per index (authoritative; the tuple's
        #: ``F_PHASE`` slot records only the phase at allocation).
        self.phase: List[int] = [PHASE_FREE] * capacity
        #: Number of live (non-free) rows.
        self.active = 0
        # LIFO free list: hot reuse keeps the working set of row
        # indices small and cache-warm.
        self._free = list(range(capacity - 1, -1, -1))
        self._seq = 0

    def _grow(self) -> None:
        old = len(self.meta)
        self.meta.extend([None] * old)
        self.pkts.extend([None] * old)
        self.phase.extend([PHASE_FREE] * old)
        self._free.extend(range(old * 2 - 1, old - 1, -1))

    @property
    def capacity(self) -> int:
        return len(self.meta)

    def alloc(
        self,
        pkt,
        vault: int,
        bank: int,
        quad: int,
        row: int,
        flits: int,
        src_link: int,
        cycle: int,
        route: int,
    ) -> int:
        """Claim a row for ``pkt`` and return its index."""
        if not self._free:
            self._grow()
        idx = self._free.pop()
        seq = self._seq
        self._seq = seq + 1
        self.meta[idx] = (
            pkt.tag,
            pkt.cub,
            vault,
            bank,
            quad,
            row,
            PHASE_XBAR,
            cycle,
            flits,
            pkt.cmd,
            src_link,
            seq,
            cycle,
            route,
            pkt.addr,
        )
        self.phase[idx] = PHASE_XBAR
        self.pkts[idx] = pkt
        self.active += 1
        return idx

    def item(self, idx: int) -> Tuple:
        """The whole row as a plain Python tuple (``F_*`` indices)."""
        return self.meta[idx]

    def route(self, idx: int) -> int:
        """Target vault of ``idx``, or -1 for a FLOW packet."""
        return self.meta[idx][F_ROUTE]

    def cub_tag(self, idx: int) -> Tuple[int, int]:
        """``(cub, tag)`` of a live row (the invariant checker's view)."""
        values = self.meta[idx]
        return values[F_CUB], values[F_TAG]

    def mark_vault(self, idx: int) -> None:
        self.phase[idx] = PHASE_VAULT

    def free_row(self, idx: int) -> None:
        """Release a row back to the pool."""
        self.phase[idx] = PHASE_FREE
        self.pkts[idx] = None
        self.meta[idx] = None
        self._free.append(idx)
        self.active -= 1

    def active_indices(self) -> np.ndarray:
        """Live row indices in allocation (seq) order — stable FIFO."""
        phase = self.phase
        meta = self.meta
        live = sorted(
            (i for i in range(len(meta)) if phase[i] != PHASE_FREE),
            key=lambda i: meta[i][F_SEQ],
        )
        return np.asarray(live, dtype=np.intp)

    def to_array(self) -> np.ndarray:
        """Live rows as a fresh ``ROW_DTYPE`` array in seq order."""
        idx = self.active_indices()
        out = np.zeros(len(idx), dtype=ROW_DTYPE)
        meta = self.meta
        phase = self.phase
        for j, i in enumerate(idx):
            values = meta[i]
            out[j] = values[:F_PHASE] + (phase[i],) + values[F_PHASE + 1 :]
        return out

    def snapshot(self) -> List[dict]:
        """Live rows as dicts in seq order (tests, debugging, export)."""
        names = ROW_DTYPE.names
        meta = self.meta
        phase = self.phase
        out = []
        for i in self.active_indices():
            values = meta[i]
            doc = dict(zip(names, (int(v) for v in values)))
            doc["phase"] = phase[i]
            doc["index"] = int(i)
            out.append(doc)
        return out

    def clear(self) -> None:
        """Release every row (after a spill to the scalar path)."""
        cap = len(self.meta)
        self.meta = [None] * cap
        self.pkts = [None] * cap
        self.phase = [PHASE_FREE] * cap
        self._free = list(range(cap - 1, -1, -1))
        self.active = 0
