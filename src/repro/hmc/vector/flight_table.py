"""Structured-array flight table: in-flight requests as numpy rows.

One row per in-flight request packet.  The columns hold everything the
datapath needs to route and execute the request — the decoded address
(vault/bank/quad/row), the command code (an index into
``COMMAND_TABLE_LIST``), the link and cycle it arrived on, a global
allocation sequence number (the FIFO tie-breaker), and a phase tag —
so the per-cycle engine never touches the Python packet object until
the request actually executes.  The packet itself (and with it the CMC
payload, data, and wire encoding) lives in the parallel ``pkts``
sidecar list under the same index.

Hot-path access pattern, chosen after measuring per-element structured
access costs:

* allocation writes the whole row with **one** tuple assignment,
* execution reads the whole row back with **one** ``.item()`` call
  (a plain Python tuple — field indices are the ``F_*`` constants),
* the crossbar drain reads only the precomputed ``route`` column
  (``-1`` marks FLOW packets, consumed at the crossbar like the
  scalar engine does).

Bulk operations — spill ordering, snapshots for tests and the
invariant checker — use masked column selections and a stable argsort
on ``seq``, which is where the structured array pays for itself.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "FlightTable",
    "PHASE_FREE",
    "PHASE_XBAR",
    "PHASE_VAULT",
    "F_TAG",
    "F_CUB",
    "F_VAULT",
    "F_BANK",
    "F_QUAD",
    "F_ROW",
    "F_PHASE",
    "F_READY",
    "F_FLITS",
    "F_CMD",
    "F_SRC_LINK",
    "F_SEQ",
    "F_INJECT",
    "F_ROUTE",
]

#: Row lifecycle: free slot -> queued in a crossbar link -> queued in a
#: vault.  The authoritative position is the queue holding the index;
#: the phase column exists for snapshots, spill audits, and tests.
PHASE_FREE, PHASE_XBAR, PHASE_VAULT = 0, 1, 2

ROW_DTYPE = np.dtype(
    [
        ("tag", np.int32),
        ("cub", np.int16),
        ("vault", np.int16),
        ("bank", np.int16),
        ("quad", np.int16),
        ("row", np.int32),
        ("phase", np.int8),
        ("ready_cycle", np.int64),
        ("flits", np.int16),
        ("cmd", np.int16),  # index into COMMAND_TABLE_LIST
        ("src_link", np.int16),
        ("seq", np.int64),  # global allocation order: the FIFO tie-breaker
        ("inject_cycle", np.int64),
        ("route", np.int16),  # target vault, or -1 for FLOW packets
    ]
)

# Tuple positions of ``FlightTable.item(idx)``, in ROW_DTYPE order.
(
    F_TAG,
    F_CUB,
    F_VAULT,
    F_BANK,
    F_QUAD,
    F_ROW,
    F_PHASE,
    F_READY,
    F_FLITS,
    F_CMD,
    F_SRC_LINK,
    F_SEQ,
    F_INJECT,
    F_ROUTE,
) = range(len(ROW_DTYPE.names))


class FlightTable:
    """Fixed-capacity (doubling) pool of flight rows plus packet sidecar."""

    __slots__ = (
        "rows",
        "pkts",
        "active",
        "_free",
        "_seq",
        "_phase_col",
        "_seq_col",
        "_route_col",
        "_tag_col",
        "_cub_col",
    )

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("flight table capacity must be >= 1")
        self.rows = np.zeros(capacity, dtype=ROW_DTYPE)
        self.pkts: List[Optional[object]] = [None] * capacity
        #: Number of live (non-free) rows.
        self.active = 0
        # LIFO free list: hot reuse keeps the working set of row
        # indices small and cache-warm.
        self._free = list(range(capacity - 1, -1, -1))
        self._seq = 0
        self._refresh_views()

    def _refresh_views(self) -> None:
        # Column views survive in-place writes but not reallocation;
        # refreshed after every grow.
        self._phase_col = self.rows["phase"]
        self._seq_col = self.rows["seq"]
        self._route_col = self.rows["route"]
        self._tag_col = self.rows["tag"]
        self._cub_col = self.rows["cub"]

    def _grow(self) -> None:
        old = len(self.rows)
        rows = np.zeros(old * 2, dtype=ROW_DTYPE)
        rows[:old] = self.rows
        self.rows = rows
        self.pkts.extend([None] * old)
        self._free.extend(range(old * 2 - 1, old - 1, -1))
        self._refresh_views()

    @property
    def capacity(self) -> int:
        return len(self.rows)

    def alloc(
        self,
        pkt,
        vault: int,
        bank: int,
        quad: int,
        row: int,
        flits: int,
        src_link: int,
        cycle: int,
        route: int,
    ) -> int:
        """Claim a row for ``pkt`` and return its index."""
        if not self._free:
            self._grow()
        idx = self._free.pop()
        seq = self._seq
        self._seq = seq + 1
        # One structured assignment for the whole row.
        self.rows[idx] = (
            pkt.tag,
            pkt.cub,
            vault,
            bank,
            quad,
            row,
            PHASE_XBAR,
            cycle,
            flits,
            pkt.cmd,
            src_link,
            seq,
            cycle,
            route,
        )
        self.pkts[idx] = pkt
        self.active += 1
        return idx

    def item(self, idx: int) -> Tuple:
        """The whole row as a plain Python tuple (``F_*`` indices)."""
        return self.rows[idx].item()

    def route(self, idx: int) -> int:
        """Target vault of ``idx``, or -1 for a FLOW packet."""
        return int(self._route_col[idx])

    def cub_tag(self, idx: int) -> Tuple[int, int]:
        """``(cub, tag)`` of a live row (the invariant checker's view)."""
        return int(self._cub_col[idx]), int(self._tag_col[idx])

    def mark_vault(self, idx: int) -> None:
        self._phase_col[idx] = PHASE_VAULT

    def free_row(self, idx: int) -> None:
        """Release a row back to the pool."""
        self._phase_col[idx] = PHASE_FREE
        self.pkts[idx] = None
        self._free.append(idx)
        self.active -= 1

    def active_indices(self) -> np.ndarray:
        """Live row indices in allocation (seq) order — stable FIFO."""
        idx = np.flatnonzero(self._phase_col != PHASE_FREE)
        if idx.size > 1:
            idx = idx[np.argsort(self._seq_col[idx], kind="stable")]
        return idx

    def snapshot(self) -> List[dict]:
        """Live rows as dicts in seq order (tests, debugging, export)."""
        names = ROW_DTYPE.names
        out = []
        for idx in self.active_indices():
            values = self.rows[idx].item()
            doc = dict(zip(names, (int(v) for v in values)))
            doc["index"] = int(idx)
            out.append(doc)
        return out

    def clear(self) -> None:
        """Release every row (after a spill to the scalar path)."""
        self.rows["phase"] = PHASE_FREE
        cap = len(self.rows)
        self.pkts = [None] * cap
        self._free = list(range(cap - 1, -1, -1))
        self.active = 0
