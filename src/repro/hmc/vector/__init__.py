"""Numpy-backed batch datapath (the ``vector`` engine).

This package is an *optional* alternate implementation behind the
``xbar`` component seam: in-flight requests live as rows of a
structured-array flight table (:mod:`repro.hmc.vector.flight_table`)
instead of per-packet :class:`~repro.hmc.xbar.Flight` objects, and
:class:`~repro.hmc.vector.engine.VectorXBar` advances all three device
phases itself through capability hooks the core :class:`Device` looks
up with ``getattr``.

Nothing outside :mod:`repro.hmc.composition` (the registry's lazy
factory) may import this package — enforced by the vector-containment
lint in ``scripts/lint_no_function_imports.py``.  It requires numpy
(the ``[vector]`` optional extra); the factory converts the
``ImportError`` into a one-line :class:`~repro.errors.ComponentError`
so the default composition stays import-clean without it.
"""

from __future__ import annotations

__all__ = ["VectorXBar", "FlightTable"]


def __getattr__(name: str):
    # PEP 562 lazy re-exports: importing the package must not pull in
    # numpy until a vector component is actually constructed.
    if name == "VectorXBar":
        from repro.hmc.vector.engine import VectorXBar

        return VectorXBar
    if name == "FlightTable":
        from repro.hmc.vector.flight_table import FlightTable

        return FlightTable
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
