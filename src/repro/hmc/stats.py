"""Occupancy and bandwidth instrumentation.

The paper's §V.C analysis reasons about "the distributions of requests
across the ... links and their associated request and crossbar queuing
structures".  This module makes those distributions measurable: a
:class:`SimSampler` attached to a simulation snapshots queue
occupancies and cumulative link FLIT counters at a fixed cadence,
producing per-resource time series and summary statistics (peak and
mean occupancy, delivered bandwidth per link) without perturbing the
simulation (sampling is read-only).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hmc.sim import HMCSim

__all__ = ["OccupancySeries", "SimSampler"]


@dataclass
class OccupancySeries:
    """One resource's sampled occupancy over time."""

    name: str
    samples: List[int] = field(default_factory=list)

    @property
    def peak(self) -> int:
        """Highest sampled occupancy."""
        return max(self.samples) if self.samples else 0

    @property
    def mean(self) -> float:
        """Mean sampled occupancy."""
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def nonzero_fraction(self) -> float:
        """Fraction of samples with any occupancy (utilization proxy)."""
        if not self.samples:
            return 0.0
        return sum(1 for s in self.samples if s > 0) / len(self.samples)


class SimSampler:
    """Samples a context's queues and links every ``interval`` cycles.

    Usage::

        sampler = SimSampler(sim, interval=1)
        ...  # run the workload, calling sampler.tick() after each clock
        print(sampler.report())

    The host engines do not call this automatically (zero overhead when
    unused); wrap the clock loop or use :meth:`run_sampled`.
    """

    def __init__(self, sim: HMCSim, interval: int = 1):
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.sim = sim
        self.interval = interval
        self.cycles_sampled = 0
        self._vault_series: Dict[str, OccupancySeries] = {}
        self._xbar_series: Dict[str, OccupancySeries] = {}
        #: Cumulative fault counters per kind (only when a fault plan
        #: is attached); a series' growth locates fault bursts in time.
        self._fault_series: Dict[str, OccupancySeries] = {}
        self._first_cycle: Optional[int] = None
        self._last_cycle: Optional[int] = None
        self._flits_at_start: Optional[int] = None

    def _series(self, table: Dict[str, OccupancySeries], name: str) -> OccupancySeries:
        s = table.get(name)
        if s is None:
            s = OccupancySeries(name)
            table[name] = s
        return s

    def tick(self) -> None:
        """Take one sample if the cadence allows."""
        cycle = self.sim.cycle
        if self._first_cycle is None:
            self._first_cycle = cycle
            self._flits_at_start = self._total_flits()
        if cycle % self.interval != 0:
            return
        self._last_cycle = cycle
        self.cycles_sampled += 1
        for device in self.sim.devices:
            for vault in device.vaults:
                self._series(
                    self._vault_series, f"dev{device.dev}.vault{vault.index}"
                ).samples.append(len(vault.rqst_queue))
            for q in device.xbar.rqst_queues + device.xbar.rsp_queues:
                self._series(self._xbar_series, q.name).samples.append(len(q))
        faults = self.sim.faults
        if faults is not None:
            for kind, count in faults.counters().items():
                self._series(self._fault_series, kind).samples.append(count)

    def _total_flits(self) -> int:
        return sum(
            link.flits_in + link.flits_out
            for device in self.sim.devices
            for link in device.links
        )

    def run_sampled(self, cycles: int) -> None:
        """Clock the context ``cycles`` times, sampling after each."""
        for _ in range(cycles):
            self.sim.clock()
            self.tick()

    # -- results ---------------------------------------------------------------

    @property
    def vault_series(self) -> Dict[str, OccupancySeries]:
        """Per-vault request-queue occupancy series."""
        return self._vault_series

    @property
    def xbar_series(self) -> Dict[str, OccupancySeries]:
        """Per-crossbar-queue occupancy series."""
        return self._xbar_series

    @property
    def fault_series(self) -> Dict[str, OccupancySeries]:
        """Cumulative fault-counter series per fault kind (empty when
        no fault plan is attached)."""
        return self._fault_series

    def hottest_vaults(self, n: int = 5) -> List[OccupancySeries]:
        """The ``n`` vaults with the highest peak occupancy."""
        return sorted(
            self._vault_series.values(), key=lambda s: s.peak, reverse=True
        )[:n]

    def link_bandwidth(self) -> float:
        """Delivered FLITs per cycle across all links since sampling began."""
        if (
            self._first_cycle is None
            or self._last_cycle is None
            or self._last_cycle == self._first_cycle
        ):
            return 0.0
        moved = self._total_flits() - (self._flits_at_start or 0)
        return moved / (self._last_cycle - self._first_cycle)

    def report(self) -> str:
        """Human-readable summary."""
        lines = [
            f"sampled {self.cycles_sampled} points over cycles "
            f"{self._first_cycle}..{self._last_cycle}",
            f"delivered link bandwidth: {self.link_bandwidth():.2f} FLITs/cycle",
        ]
        hot = self.hottest_vaults(3)
        if hot:
            lines.append(
                "hottest vault queues: "
                + ", ".join(
                    f"{s.name} (peak {s.peak}, mean {s.mean:.1f})" for s in hot
                )
            )
        busiest_xbar = sorted(
            self._xbar_series.values(), key=lambda s: s.peak, reverse=True
        )[:2]
        if busiest_xbar:
            lines.append(
                "busiest crossbar queues: "
                + ", ".join(f"{s.name} (peak {s.peak})" for s in busiest_xbar)
            )
        if self._fault_series:
            lines.append(
                "faults (cumulative): "
                + ", ".join(
                    f"{name}={series.samples[-1]}"
                    for name, series in sorted(self._fault_series.items())
                    if series.samples
                )
            )
        return "\n".join(lines)
