"""Logic-layer crossbar: per-link request/response queues and routing.

The crossbar connects a device's links to its 32 vaults.  Each link
owns a bounded request queue and a bounded response queue (depth =
``xbar_depth``, 128 slots in the paper's evaluation).  One packet per
link per cycle moves in each direction:

* *drain*: the head of a link's request queue routes to its target
  vault's request queue (stalling in place if the vault queue is
  full — this back-pressure is what differentiates the 4-link and
  8-link devices once the paper's hot-spot workload exceeds ~50
  threads);
* *retire*: the head of a link's response queue moves to the link's
  retire buffer where the host can ``recv`` it.

Requests entering on a link that is not attached to the target vault's
quadrant may be charged extra hop cycles
(``HMCConfig.nonlocal_hop_cycles``, default 0 to match the paper's
queueing-dominated model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.hmc.commands import CommandInfo
from repro.hmc.components import CrossbarModel, register_component
from repro.hmc.packet import RequestPacket, ResponsePacket
from repro.hmc.queue import StallQueue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hmc.config import HMCConfig

__all__ = ["Flight", "XBar", "IdealXBar"]


@dataclass(eq=False, slots=True)
class Flight:
    """A request in flight through one device, with routing metadata.

    Identity-compared (``eq=False``): two flights carrying equal
    packets are still distinct queue entries.
    """

    pkt: RequestPacket
    src_link: int
    inject_cycle: int
    vault: int
    bank: int
    quad: int
    #: Remaining extra crossbar hop cycles before the packet may route.
    hop_delay: int = 0
    #: Device the request originally entered on (multi-device topologies).
    origin_dev: int = 0
    #: Link-layer sequence number (set when a LinkFlowModel is attached).
    link_seq: int = field(default=-1, compare=False)
    #: Cycle at which DRAM service completes (timing model only; -1 =
    #: service not yet started).
    service_until: int = field(default=-1, compare=False)
    #: Chain hops consumed reaching this device (multi-device topologies).
    chain_hops: int = field(default=0, compare=False)
    #: Command metadata, resolved once at inject time so the drain and
    #: execute phases never re-run the command-table lookup.
    info: Optional[CommandInfo] = field(default=None, compare=False)
    #: Row coordinate of the target address, decoded once at inject time
    #: (bank timing; -1 = not precomputed, resolve lazily).
    row: int = field(default=-1, compare=False)


@register_component("xbar", "queued")
class XBar(CrossbarModel):
    """The bounded-queue crossbar of one device (seam key ``queued``).

    Per-link request/response queues of ``config.xbar_depth`` slots;
    a full queue back-pressures the sender — the capacity model behind
    the paper's Figures 5-7.
    """

    def __init__(self, config: HMCConfig, dev: int, *, depth: int = 0):
        self.config = config
        self.dev = dev
        depth = depth or config.xbar_depth
        self.rqst_queues: List[StallQueue] = [
            StallQueue(depth, f"dev{dev}.link{l}.xbar_rqst")
            for l in range(config.num_links)
        ]
        self.rsp_queues: List[StallQueue] = [
            StallQueue(depth, f"dev{dev}.link{l}.xbar_rsp")
            for l in range(config.num_links)
        ]
        # O(1) occupancy counters maintained by every queue mutation
        # below: the active-set scheduler's "is this crossbar idle?"
        # check must not scan 2 * num_links queues per cycle.
        self.rqst_occ = 0
        self.rsp_occ = 0

    # -- host side -----------------------------------------------------------

    def inject(self, link: int, flight: Flight) -> bool:
        """Push a new request into a link's crossbar queue.

        Returns False when the queue is full (the ``HMC_STALL`` case of
        ``hmcsim_send``).
        """
        # StallQueue.push inlined (same counters/high-water semantics):
        # one call per injected packet on the host's send hot path.
        q = self.rqst_queues[link]
        n = len(q._q) + 1
        if n > q.depth:
            q.stalls += 1
            return False
        q._q.append(flight)
        q.pushes += 1
        if n > q.high_water:
            q.high_water = n
        self.rqst_occ += 1
        return True

    # -- device side -----------------------------------------------------------

    def push_response(self, link: int, rsp: ResponsePacket) -> bool:
        """Queue a completed response toward its source link."""
        q = self.rsp_queues[link]
        n = len(q._q) + 1
        if n > q.depth:
            q.stalls += 1
            return False
        q._q.append(rsp)
        q.pushes += 1
        if n > q.high_water:
            q.high_water = n
        self.rsp_occ += 1
        return True

    def head_request(self, link: int) -> Optional[Flight]:
        """Peek the head of a link's request queue."""
        return self.rqst_queues[link].peek()

    def pop_request(self, link: int) -> Optional[Flight]:
        """Pop the head of a link's request queue."""
        flight = self.rqst_queues[link].pop()
        if flight is not None:
            self.rqst_occ -= 1
        return flight

    def unpop_request(self, link: int, flight: Flight) -> None:
        """Undo a pop after a downstream stall (entry keeps its place)."""
        self.rqst_queues[link].requeue_head(flight)
        self.rqst_occ += 1

    def pop_response(self, link: int) -> Optional[ResponsePacket]:
        """Pop the head of a link's response queue (for retirement)."""
        rsp = self.rsp_queues[link].pop()
        if rsp is not None:
            self.rsp_occ -= 1
        return rsp

    # -- statistics -----------------------------------------------------------

    def total_stalls(self) -> int:
        """Stall count across all crossbar queues."""
        return sum(q.stalls for q in self.rqst_queues) + sum(
            q.stalls for q in self.rsp_queues
        )

    def occupancy(self) -> int:
        """Entries currently queued across all crossbar queues."""
        return self.rqst_occ + self.rsp_occ


#: Queue depth used by the ideal crossbar: deep enough that no workload
#: ever fills it, so inject/push_response never stall.
_IDEAL_DEPTH = 1 << 30


@register_component("xbar", "ideal")
class IdealXBar(XBar):
    """A capacity-unconstrained crossbar (seam key ``ideal``).

    The classic ablation model: identical routing and ordering, but the
    per-link queues are effectively infinite, so the crossbar never
    back-pressures the host or the vault response path.  Comparing a
    run against the ``queued`` model isolates how much of a workload's
    queueing delay the crossbar capacity itself contributes.
    """

    def __init__(self, config: HMCConfig, dev: int):
        super().__init__(config, dev, depth=_IDEAL_DEPTH)
