"""One HMC device: links, crossbar, vaults, registers, and its clock.

The device advances in three fixed phases per cycle (see DESIGN.md §2),
ordered so that an uncontended request completes its round trip in
exactly three cycles — the calibration that makes the paper's
Algorithm 1 fast path cost MIN_CYCLE = 6:

1. **Retire** — one response per link moves from the crossbar response
   queue to the link retire buffer (and, in chained topologies,
   responses belonging to another cube are handed to the topology for
   the return trip).
2. **Vault execute** — each vault issues at most one request from its
   queue head (blocked by busy banks and by a full response path).
3. **XBar drain** — one request per link routes from the crossbar
   request queue to its target vault queue (or to the topology when
   the packet's CUB names another cube).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.faults.controller import FATE_DROP, FATE_DUP
from repro.hmc.commands import COMMAND_TABLE_LIST, CommandKind, command_for_code
from repro.hmc.components import CrossbarModel
from repro.hmc.composition import build_vault_scheduler, build_xbar
from repro.hmc.config import HMCConfig
from repro.hmc.link import Link
from repro.hmc.memory import MemoryView
from repro.hmc.packet import RequestPacket, ResponsePacket
from repro.hmc.registers import RegisterFile
from repro.hmc.trace import TraceLevel
from repro.hmc.vault import Vault
from repro.hmc.xbar import Flight

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hmc.sim import HMCSim

__all__ = ["Device"]

_T_CMD = int(TraceLevel.CMD)
_T_LATENCY = int(TraceLevel.LATENCY)
_T_STALL = int(TraceLevel.STALL)
_T_FAULT = int(TraceLevel.FAULT)
_FLOW = CommandKind.FLOW


class Device:
    """One Hybrid Memory Cube in a simulation context."""

    def __init__(self, dev: int, config: HMCConfig, sim: "HMCSim"):
        self.dev = dev
        self.config = config
        self.sim = sim
        self.links: List[Link] = [
            Link(l, config.quad_of_link(l)) for l in range(config.num_links)
        ]
        # Pipeline stages come from the component registry (via the
        # composition root), never from concrete classes: the selected
        # implementations are config fields, and the lint gate keeps
        # this module free of direct seam-implementation imports.
        self.xbar: CrossbarModel = build_xbar(config, dev)
        self.vaults: List[Vault] = [
            Vault(
                v,
                config.quad_of_vault(v),
                config.queue_depth,
                config.num_banks,
                dev,
                scheduler=build_vault_scheduler(config),
            )
            for v in range(config.num_vaults)
        ]
        self.registers = RegisterFile(config, dev)
        self._mem: MemoryView = sim.backend.view(
            dev * config.capacity_bytes, config.capacity_bytes
        )
        # Active-set scheduler state: vaults with queued or pending
        # work.  Vaults add themselves on every successful push; the
        # execute phase removes a vault once its queue and pending
        # response slot are both empty.  Between phases the set is
        # exactly {v : v.rqst_queue or v._pending_rsp}.
        self._active_vaults: Set[int] = set()
        for vault in self.vaults:
            vault._sched = self._active_vaults
        # Inlined routing constants for the send hot path.
        self._cap_mask = config.capacity_bytes - 1
        (
            self._vault_lo,
            self._vault_mask,
            self._bank_lo,
            self._bank_mask,
            self._row_lo,
            self._row_mask,
        ) = sim.addrmap.routing_constants()
        self._quads_of_vaults = tuple(
            config.quad_of_vault(v) for v in range(config.num_vaults)
        )
        self._quads_of_links = tuple(
            config.quad_of_link(l) for l in range(config.num_links)
        )
        # Capability hooks a crossbar model may provide (the vector
        # engine does): resolved once with getattr, None for the
        # standard models, so this module still names no concrete
        # seam implementation.
        self._send_hook = getattr(self.xbar, "fast_send", None)
        self._cycle_hook = getattr(self.xbar, "device_cycle", None)
        # Counters.
        self.cmc_rejects = 0
        self.cmc_failures = 0
        self.flow_packets = 0
        self.forwarded_rqsts = 0
        self.retired_rsps = 0

    # -- services shared with the vault pipeline ------------------------------

    @property
    def tracer(self):
        """The simulation-wide tracer."""
        return self.sim.tracer

    @property
    def cmc(self):
        """The simulation-wide CMC registry."""
        return self.sim.cmc

    @property
    def timing(self):
        """Optional DRAM timing model."""
        return self.sim.timing

    @property
    def power(self):
        """Optional power model."""
        return self.sim.power

    @property
    def power_report(self):
        """Simulation-wide power accumulator."""
        return self.sim.power_report

    @property
    def flow(self):
        """Optional link-layer flow-control model."""
        return self.sim.flow

    def mem_read(self, addr: int, nbytes: int) -> bytes:
        """Read device-local memory (bounds-checked)."""
        return self._mem.read(addr, nbytes)

    def mem_write(self, addr: int, data: bytes) -> None:
        """Write device-local memory (bounds-checked)."""
        self._mem.write(addr, data)

    def amo_view(self) -> MemoryView:
        """The rebased memory window the atomic unit operates on."""
        return self._mem

    def row_of(self, addr: int) -> int:
        """Row coordinate of a device-local address (for bank timing)."""
        return ((addr & self._cap_mask) >> self._row_lo) & self._row_mask

    # -- host interface --------------------------------------------------------

    def send(self, link: int, pkt: RequestPacket, cycle: int) -> bool:
        """Inject a request on ``link``; False = HMC_STALL (queue full)."""
        if not 0 <= link < self.config.num_links:
            raise ValueError(f"device {self.dev} has no link {link}")
        hook = self._send_hook
        if hook is not None:
            handled = hook(self, pkt, link, cycle)
            if handled is not None:
                # The crossbar took (or stalled) the request itself;
                # only the link ingress counters remain to update.
                # Vector mode implies tracing is off, so the stall
                # trace of the scalar path has no equivalent here.
                if handled:
                    lk = self.links[link]
                    lk.rqsts_in += 1
                    lk.flits_in += 1 + len(pkt.data) // 16
                return handled
        pkt.slid = link
        lng = 1 + len(pkt.data) // 16  # pkt.lng, without the property calls
        # Routing is computed exactly once here and carried on the
        # Flight: vault/bank/quad for the crossbar, row for bank
        # timing, and the command-table entry for every later phase.
        local = pkt.addr & self._cap_mask
        vault = (local >> self._vault_lo) & self._vault_mask
        quad = self._quads_of_vaults[vault]
        hop = (
            self.config.nonlocal_hop_cycles
            if self._quads_of_links[link] != quad
            else 0
        )
        flight = Flight(
            pkt=pkt,
            src_link=link,
            inject_cycle=cycle,
            vault=vault,
            bank=(local >> self._bank_lo) & self._bank_mask,
            quad=quad,
            hop_delay=hop,
            origin_dev=self.dev,
            info=COMMAND_TABLE_LIST[pkt.cmd],
            row=(local >> self._row_lo) & self._row_mask,
        )
        flow = self.sim.flow
        if flow is not None and not flow.try_acquire(self.dev, link, lng):
            # Link-layer token stall: the transmitter has no credit.
            tracer = self.sim.tracer
            if tracer.mask & _T_STALL:
                tracer.trace_stall(
                    cycle, where=f"link{link}.tokens", dev=self.dev, src=link
                )
            return False
        ok = self.xbar.inject(link, flight)
        if flow is not None:
            if ok:
                flight.link_seq = flow.on_transmit(self.dev, link, lng, flight)
            else:
                # Queue full after credit was granted: hand it back.
                flow.refund(self.dev, link, lng)
        if ok:
            lk = self.links[link]
            lk.rqsts_in += 1
            lk.flits_in += lng
        else:
            tracer = self.sim.tracer
            if tracer.mask & _T_STALL:
                tracer.trace_stall(
                    cycle, where=f"link{link}.xbar_rqst", dev=self.dev, src=link
                )
        return ok

    def recv(self, link: int) -> Optional[ResponsePacket]:
        """Collect the oldest retired response on ``link``, or None."""
        return self.links[link].recv()

    def route_flight(
        self,
        pkt: RequestPacket,
        src_link: int,
        inject_cycle: int,
        *,
        hop_delay: int = 0,
        origin_dev: int = 0,
        link_seq: int = -1,
        service_until: int = -1,
        chain_hops: int = 0,
    ) -> Flight:
        """Build a :class:`Flight` for ``pkt`` with routing recomputed.

        The cold-path twin of the routing block in :meth:`send`:
        checkpoint restore (and external drivers) rebuild in-flight
        requests from bare packets here, deriving vault/bank/quad/row
        and the command-table entry from the packet rather than
        serializing them.
        """
        local = pkt.addr & self._cap_mask
        vault = (local >> self._vault_lo) & self._vault_mask
        return Flight(
            pkt=pkt,
            src_link=src_link,
            inject_cycle=inject_cycle,
            vault=vault,
            bank=(local >> self._bank_lo) & self._bank_mask,
            quad=self._quads_of_vaults[vault],
            hop_delay=hop_delay,
            origin_dev=origin_dev,
            link_seq=link_seq,
            service_until=service_until,
            chain_hops=chain_hops,
            info=COMMAND_TABLE_LIST[pkt.cmd],
            row=(local >> self._row_lo) & self._row_mask,
        )

    def accept_forwarded(self, flight: Flight, link: int) -> bool:
        """Receive a request forwarded from a neighbouring cube."""
        flight.chain_hops += 1
        return self.xbar.inject(link, flight)

    # -- clock phases ------------------------------------------------------------

    def busy(self) -> bool:
        """True when this device has work a cycle could progress.

        O(1): active vaults, crossbar occupancy counters, and the flow
        model's per-device replay index.  A device that is not busy
        skips all three clock phases — every phase is a no-op on empty
        structures, so skipping is observationally identical.
        """
        if self._active_vaults:
            return True
        xbar = self.xbar
        if xbar.rqst_occ or xbar.rsp_occ:
            return True
        flow = self.sim.flow
        return flow is not None and bool(flow.replay_links(self.dev))

    def clock(self, cycle: int) -> None:
        """Advance this device one cycle (three phases, fixed order)."""
        if not self.busy():
            return
        hook = self._cycle_hook
        if hook is not None and hook(self, cycle):
            return
        self._phase_retire(cycle)
        self._phase_vault_execute(cycle)
        self._phase_xbar_drain(cycle)

    def _phase_retire(self, cycle: int) -> None:
        # A link retires up to config.link_rsp_rate response packets
        # per device cycle — the serial link moves several packets per
        # device clock, but not unboundedly many.  Per-link response
        # bandwidth is what saturates first under the paper's hot-spot
        # workload, and it saturates at roughly half the thread count
        # on a 4-link device compared to an 8-link one.
        xbar = self.xbar
        if not xbar.rsp_occ:
            return
        tracer = self.sim.tracer
        tmask = tracer.mask
        rate = self.config.link_rsp_rate
        rsp_queues = xbar.rsp_queues
        faults = self.sim.faults
        rsp_faults = (
            faults if faults is not None and faults.has_rsp_faults else None
        )
        for link in self.links:
            if not rsp_queues[link.link_id]._q:
                continue
            for _ in range(rate):
                rsp = xbar.pop_response(link.link_id)
                if rsp is None:
                    break
                rsp.retire_cycle = cycle
                if rsp.origin_dev not in (-1, self.dev):
                    # Response belongs to a request that entered on
                    # another cube: hand it to the topology for the
                    # return trip.
                    self.sim.topology.forward_response(self.dev, rsp, cycle)
                    continue
                if rsp_faults is not None:
                    fate = rsp_faults.response_fate(
                        self.dev, link.link_id, rsp, cycle
                    )
                    if fate == FATE_DROP:
                        # The response vanishes: record the lost tag so
                        # the invariant checker excuses it and the host
                        # watchdog knows to retransmit.
                        rsp_faults.on_response_dropped(
                            self.dev, link.link_id, rsp, cycle
                        )
                        continue
                    if fate == FATE_DUP:
                        rsp_faults.note(
                            "rsp_dup", cycle,
                            dev=self.dev, link=link.link_id, tag=rsp.tag,
                        )
                        link.retire(rsp)
                link.retire(rsp)
                self.retired_rsps += 1
                if tmask & _T_CMD:
                    resp = rsp.response
                    op = resp.name if resp is not None else f"CMC_RSP({rsp.cmd})"
                    tracer.trace_rsp(
                        cycle, op=op, dev=self.dev, link=link.link_id, tag=rsp.tag
                    )
                if tmask & _T_LATENCY and rsp.inject_cycle >= 0:
                    tracer.trace_latency(
                        cycle, tag=rsp.tag, cycles=cycle - rsp.inject_cycle
                    )

    def _phase_vault_execute(self, cycle: int) -> None:
        active = self._active_vaults
        if not active:
            return
        faults = self.sim.faults
        stall = (
            faults.vault if faults is not None and faults.has_vault else None
        )
        vaults = self.vaults
        # Ascending vault order matters: multiple vaults can target the
        # same response queue, and the seed engine visited vaults in
        # index order.  Inactive vaults are no-ops there, so iterating
        # the sorted active set preserves ordering exactly.
        for index in sorted(active):
            if stall is not None and stall.stalled(self.dev, index, cycle):
                # Transient vault freeze: queued work waits in place and
                # the vault stays active, resuming when the stall window
                # passes — nothing is lost, only delayed.
                continue
            vault = vaults[index]
            if not vault.flush_pending(self, cycle):
                continue
            vault.step(self, cycle)
            if not vault.rqst_queue._q and vault._pending_rsp is None:
                active.discard(index)

    def _phase_xbar_drain(self, cycle: int) -> None:
        # Each link's crossbar queue drains fully per cycle (in order),
        # blocking only on a full vault queue — the crossbar, like the
        # vault queues, models capacity.  The fixed link iteration
        # order is the source of the small 4-link/8-link ordering
        # perturbations the paper observes past ~50 threads, once the
        # hot vault's 64-slot queue overflows back into the per-link
        # crossbar queues.  Only links with queued requests or due
        # replays are visited; a skipped link is a no-op in the full
        # scan (empty head, empty replay list), so ascending iteration
        # over the active links is order-identical.
        xbar = self.xbar
        flow = self.sim.flow
        rqst_queues = xbar.rqst_queues
        if flow is None:
            if not xbar.rqst_occ:
                return
            active = [l for l in range(self.config.num_links) if rqst_queues[l]._q]
        else:
            replay_links = flow.replay_links(self.dev)
            if not xbar.rqst_occ and not replay_links:
                return
            active = sorted(
                {l for l in range(self.config.num_links) if rqst_queues[l]._q}
                | set(replay_links)
            )
        tracer = self.sim.tracer
        num_devs = self.sim.config.num_devs
        vaults = self.vaults
        for link_id in active:
            if flow is not None:
                # Replay packets whose link-retry latency has elapsed.
                for replay in flow.due_replays(self.dev, link_id, cycle):
                    if flow.try_acquire(self.dev, link_id, replay.pkt.lng):
                        if xbar.inject(link_id, replay):
                            replay.link_seq = flow.on_transmit(
                                self.dev, link_id, replay.pkt.lng, replay
                            )
                        else:
                            flow.refund(self.dev, link_id, replay.pkt.lng)
                            flow.schedule_replay(self.dev, link_id, cycle + 1, replay)
                    else:
                        flow.schedule_replay(self.dev, link_id, cycle + 1, replay)
            queue = rqst_queues[link_id]
            dq = queue._q
            while dq:
                flight = dq[0]
                if flight.hop_delay > 0:
                    flight.hop_delay -= 1
                    break
                if (
                    flow is not None
                    and flight.link_seq >= 0
                    and flow.transmission_corrupted(
                        self.dev, link_id, flight.link_seq
                    )
                ):
                    # CRC error at the receiver: drop the packet and
                    # negatively acknowledge — the transmitter will
                    # replay it from the retry buffer (IRTRY).
                    xbar.pop_request(link_id)
                    flow.negative_acknowledge(
                        self.dev, link_id, flight.link_seq, cycle, flight.pkt.tag
                    )
                    tracer.trace_stall(
                        cycle, where=f"link{link_id}.retry", dev=self.dev, src=link_id
                    )
                    if tracer.mask & _T_FAULT:
                        tracer.trace_fault(
                            cycle,
                            kind="link_retry",
                            dev=self.dev,
                            link=link_id,
                            tag=flight.pkt.tag,
                        )
                    continue
                info = flight.info
                if info is None:
                    info = flight.info = command_for_code(flight.pkt.cmd)
                if info.kind is _FLOW:
                    # Flow packets are consumed at the link layer.
                    xbar.pop_request(link_id)
                    self.flow_packets += 1
                    self._flow_ack(link_id, flight)
                    continue
                if flight.pkt.cub != self.dev and num_devs > 1:
                    xbar.pop_request(link_id)
                    self.forwarded_rqsts += 1
                    self._flow_ack(link_id, flight)
                    self.sim.topology.forward_request(self.dev, flight, link_id)
                    continue
                if vaults[flight.vault].push(flight):
                    xbar.pop_request(link_id)
                    self._flow_ack(link_id, flight)
                else:
                    if tracer.mask & _T_STALL:
                        tracer.trace_stall(
                            cycle,
                            where=f"vault{flight.vault}.rqst",
                            dev=self.dev,
                            src=link_id,
                        )
                    break

    def _flow_ack(self, link_id: int, flight: Flight) -> None:
        """Release a packet's retry-buffer slot and return its tokens
        once it has left the crossbar (the receive buffer is free)."""
        if self.flow is not None and flight.link_seq >= 0:
            self.flow.acknowledge(self.dev, link_id, flight.link_seq)

    # -- statistics ------------------------------------------------------------

    def queue_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-queue stall/occupancy statistics for this device."""
        stats: Dict[str, Dict[str, int]] = {}
        for q in self.xbar.rqst_queues + self.xbar.rsp_queues:
            stats[q.name] = {
                "pushes": q.pushes,
                "pops": q.pops,
                "stalls": q.stalls,
                "high_water": q.high_water,
            }
        for v in self.vaults:
            q = v.rqst_queue
            stats[q.name] = {
                "pushes": q.pushes,
                "pops": q.pops,
                "stalls": q.stalls,
                "high_water": q.high_water,
            }
        return stats
