"""Host link model.

Each device exposes 4 or 8 full-duplex links.  In the simulator a link
is the host attach point: requests enter the device through a link's
crossbar request queue (see :mod:`repro.hmc.xbar`) and completed
responses are *retired* to the link's retire buffer, where
``hmcsim_recv`` finds them.  Links are physically attached to a
quadrant; a request entering on a non-local link pays the configured
crossbar hop penalty to reach its vault.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.hmc.packet import ResponsePacket

__all__ = ["Link"]


class Link:
    """One host link of one device."""

    __slots__ = ("link_id", "quad", "retired", "rqsts_in", "rsps_out", "flits_in", "flits_out")

    def __init__(self, link_id: int, quad: int):
        self.link_id = link_id
        self.quad = quad
        #: Responses ready for the host (drained by ``recv``).
        self.retired: Deque[ResponsePacket] = deque()
        self.rqsts_in = 0
        self.rsps_out = 0
        self.flits_in = 0
        self.flits_out = 0

    def retire(self, rsp: ResponsePacket) -> None:
        """Make a response visible to ``recv`` on this link."""
        self.retired.append(rsp)
        self.rsps_out += 1
        self.flits_out += 1 + len(rsp.data) // 16  # rsp.lng, inlined

    def recv(self) -> Optional[ResponsePacket]:
        """Pop the oldest retired response, or None."""
        return self.retired.popleft() if self.retired else None

    def drain_ready(self) -> bool:
        """True when retired responses are waiting for the host.

        O(1) peek used by host engines to skip the ``recv`` call (and
        its context bookkeeping) on links with nothing to collect.
        """
        return bool(self.retired)

    def pending_responses(self) -> int:
        """Responses retired but not yet collected by the host."""
        return len(self.retired)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.link_id}, quad={self.quad}, retired={len(self.retired)})"
