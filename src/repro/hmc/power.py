"""Power/energy accounting extension (paper §VII, Future Work).

Companion to :mod:`repro.hmc.timing`: an opt-in per-operation energy
model.  Each executed request is charged a FLIT-proportional link
transfer cost plus an operation cost (DRAM activate/column access and,
for atomics and CMC ops, logic-layer ALU energy).  Totals are
accumulated per command name so a simulation can report where its
energy went — the cost side of the paper's cost-benefit analysis
motivation for CMC research (§I).

All figures are simple defaults in picojoules; they are parameters, not
claims about any specific HMC implementation (the paper is explicit
that per-implementation data stays out of the core).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.hmc.commands import CommandInfo, CommandKind

__all__ = ["HMCPowerModel", "PowerReport"]


@dataclass
class PowerReport:
    """Accumulated energy, broken down by operation name."""

    energy_pj: Dict[str, float] = field(default_factory=dict)
    ops: Dict[str, int] = field(default_factory=dict)

    def add(self, op: str, pj: float) -> None:
        """Charge ``pj`` picojoules to operation ``op``."""
        self.energy_pj[op] = self.energy_pj.get(op, 0.0) + pj
        self.ops[op] = self.ops.get(op, 0) + 1

    @property
    def total_pj(self) -> float:
        """Total accumulated energy in picojoules."""
        return sum(self.energy_pj.values())

    def average_pj(self, op: str) -> float:
        """Mean energy per execution of ``op`` (0 when never executed)."""
        n = self.ops.get(op, 0)
        return self.energy_pj.get(op, 0.0) / n if n else 0.0


@dataclass(frozen=True)
class HMCPowerModel:
    """Per-operation energy parameters (picojoules).

    Attributes:
        pj_per_flit: SerDes + crossbar transfer energy per FLIT moved
            (request and response both charged).
        pj_dram_access: one DRAM activate + column access.
        pj_atomic_alu: logic-layer ALU energy for a built-in atomic.
        pj_cmc_alu: default logic-layer energy for a CMC operation.
    """

    pj_per_flit: float = 7.0
    pj_dram_access: float = 110.0
    pj_atomic_alu: float = 4.0
    pj_cmc_alu: float = 6.0

    def request_energy(self, info: CommandInfo, rqst_flits: int, rsp_flits: int) -> float:
        """Energy for one completed request (transfer + operation)."""
        pj = (rqst_flits + rsp_flits) * self.pj_per_flit
        if info.kind is not CommandKind.FLOW:
            pj += self.pj_dram_access
        if info.kind in (CommandKind.ATOMIC, CommandKind.POSTED_ATOMIC):
            pj += self.pj_atomic_alu
        elif info.kind is CommandKind.CMC:
            pj += self.pj_cmc_alu
        return pj
