"""Device registers and the simulated JTAG access path.

HMC-Sim 1.0 exposed "internal access to the device via a simulated
JTAG API" alongside mode read/write packets; both interfaces are
carried forward here (§II of the paper).  The register file models the
externally visible configuration/status registers of an HMC device:
per-link status/control, global control, vault control, error, and the
read-only FEATURES/REVISION words whose fields encode the device
geometry.

Registers are addressed by a 22-bit register index — the value carried
in the ``ADRS`` field of ``MD_RD``/``MD_WR`` packets and passed to the
JTAG helpers.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import HMCSimError
from repro.hmc.config import HMCConfig

__all__ = ["RegisterFile", "HMC_REG"]


#: Register index map (mirrors HMC-Sim's HMC_REG_* macros).
HMC_REG: Dict[str, int] = {
    "EDR0": 0x2B0000,  # external data register 0..3
    "EDR1": 0x2B0001,
    "EDR2": 0x2B0002,
    "EDR3": 0x2B0003,
    "ERR": 0x2B0004,  # error status
    "GC": 0x280000,  # global configuration
    "LC0": 0x240000,  # link configuration 0..7
    "LC1": 0x240001,
    "LC2": 0x240002,
    "LC3": 0x240003,
    "LC4": 0x240004,
    "LC5": 0x240005,
    "LC6": 0x240006,
    "LC7": 0x240007,
    "LRLL": 0x240010,  # link retry low-level
    "GRLL": 0x240011,  # global retry low-level
    "VCR": 0x108000,  # vault control
    "FEAT": 0x2C0000,  # features (read-only)
    "RVID": 0x2C0001,  # revision / vendor id (read-only)
}

_READ_ONLY = frozenset({HMC_REG["FEAT"], HMC_REG["RVID"]})


def _features_word(config: HMCConfig) -> int:
    """Pack device geometry into the FEATURES register.

    Layout: [3:0] capacity GB, [7:4] link count, [13:8] vault count,
    [18:14] banks per vault, [23:19] DRAM dies.
    """
    return (
        (config.capacity & 0xF)
        | ((config.num_links & 0xF) << 4)
        | ((config.num_vaults & 0x3F) << 8)
        | ((config.num_banks & 0x1F) << 14)
        | ((config.num_drams & 0x1F) << 19)
    )


#: Revision word: Gen2, spec 2.1 (major 2, minor 1), vendor id 0xF.
_RVID_WORD = (2 << 8) | (1 << 4) | 0xF


class RegisterFile:
    """The register file of one device."""

    def __init__(self, config: HMCConfig, dev: int):
        self.config = config
        self.dev = dev
        self._regs: Dict[int, int] = {idx: 0 for idx in HMC_REG.values()}
        self._regs[HMC_REG["FEAT"]] = _features_word(config)
        self._regs[HMC_REG["RVID"]] = _RVID_WORD
        # Link configuration registers: bit 0 = link active.
        for link in range(config.num_links):
            self._regs[HMC_REG[f"LC{link}"]] = 1

    def valid(self, reg: int) -> bool:
        """True if ``reg`` names an implemented register."""
        return reg in self._regs

    def read(self, reg: int) -> int:
        """Read a register.

        Raises:
            HMCSimError: for unimplemented register indices.
        """
        try:
            return self._regs[reg]
        except KeyError:
            raise HMCSimError(
                f"device {self.dev}: register {reg:#x} is not implemented"
            ) from None

    def write(self, reg: int, value: int) -> None:
        """Write a register (read-only registers silently keep their value,
        matching hardware write-ignore semantics).

        Raises:
            HMCSimError: for unimplemented register indices or values
                outside 64 bits.
        """
        if reg not in self._regs:
            raise HMCSimError(
                f"device {self.dev}: register {reg:#x} is not implemented"
            )
        if not 0 <= value < (1 << 64):
            raise HMCSimError(f"register value {value!r} outside 64 bits")
        if reg in _READ_ONLY:
            return
        self._regs[reg] = value

    def count_error(self) -> None:
        """Latch one device-detected error into the ERR status register.

        Used by the fault layer (uncorrectable ECC events) the way real
        hardware accumulates error syndromes: hosts poll ERR via mode
        reads or the JTAG path.  Saturates at 64 bits rather than wrap.
        """
        reg = HMC_REG["ERR"]
        value = self._regs[reg]
        if value < (1 << 64) - 1:
            self._regs[reg] = value + 1

    def snapshot(self) -> Dict[str, int]:
        """Name → value for every register (debug/inspection helper)."""
        by_index = {v: k for k, v in HMC_REG.items()}
        return {by_index[idx]: val for idx, val in sorted(self._regs.items())}
