"""Levelled trace subsystem.

HMC-Sim exposes ``hmcsim_trace_handle`` / ``hmcsim_trace_level`` so a
simulation can stream discrete events (stalls, bank conflicts, packet
latency, request/response flow) to a file.  The paper's *Discrete
Tracing* requirement (§IV.A) additionally demands that user-defined CMC
operations appear in traces under their human-readable name — resolved
at runtime through the plugin's ``cmc_str`` symbol — rather than as an
opaque command code.  The vault pipeline therefore passes the resolved
operation name into :meth:`Tracer.trace_rqst`.

Trace levels are a bitmask mirroring HMC-Sim's ``HMC_TRACE_*`` macros.
Events are rendered one-per-line in a stable ``key=value`` format that
is trivially machine-parsable; tests assert on it.
"""

from __future__ import annotations

import enum
import io
from collections import deque
from typing import IO, Deque, Dict, Optional

__all__ = ["TraceLevel", "TraceEvent", "Tracer"]


class TraceLevel(enum.IntFlag):
    """Bitmask of event categories (mirrors ``HMC_TRACE_*``)."""

    NONE = 0
    BANK = 1 << 0  # bank conflicts
    QUEUE = 1 << 1  # queue push/pop
    CMD = 1 << 2  # request/response command flow
    STALL = 1 << 3  # stall events
    LATENCY = 1 << 4  # per-request retire latency
    POWER = 1 << 5  # power/energy events (future-work extension)
    FAULT = 1 << 6  # injected faults and recovery events
    ALL = BANK | QUEUE | CMD | STALL | LATENCY | POWER | FAULT


class TraceEvent:
    """One trace record: a category, a cycle stamp, and ordered fields."""

    __slots__ = ("level", "cycle", "fields")

    def __init__(self, level: TraceLevel, cycle: int, **fields: object):
        self.level = level
        self.cycle = cycle
        self.fields = fields

    def render(self) -> str:
        """Render as a single ``key=value`` line."""
        parts = [f"HMCSIM_TRACE : {self.level.name} : CYCLE={self.cycle}"]
        parts += [f"{k.upper()}={v}" for k, v in self.fields.items()]
        return " : ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceEvent({self.render()!r})"


class Tracer:
    """Filters events by level and writes them to an optional handle.

    Enabled events are retained in a bounded in-memory ring of
    ``max_buffer`` entries so tests and notebooks can inspect them
    without touching the filesystem.  When the ring is full the
    *oldest* event is evicted (and counted in :attr:`dropped`), so the
    buffer always holds the most recent ``max_buffer`` events — a
    long-running simulation's memory stays bounded while the tail of
    the trace, the part a post-mortem needs, survives.  An attached
    handle still receives every event.
    """

    def __init__(
        self,
        level: TraceLevel = TraceLevel.NONE,
        handle: Optional[IO[str]] = None,
        max_buffer: int = 100_000,
    ):
        self.level = level
        self.handle = handle
        self.max_buffer = max_buffer
        self.events: Deque[TraceEvent] = deque(maxlen=max_buffer)
        self.dropped = 0
        self.counts: Dict[str, int] = {}

    # -- configuration (mirrors hmcsim_trace_handle / hmcsim_trace_level) ---

    @property
    def level(self) -> TraceLevel:
        """The enabled-category bitmask."""
        return self._level

    @level.setter
    def level(self, value: TraceLevel) -> None:
        self._level = TraceLevel(value)
        #: Plain-int mirror of the level: hot paths gate on
        #: ``tracer.mask & CATEGORY`` — an int bit test is several times
        #: cheaper than an IntFlag operation.
        self.mask = int(self._level)

    def set_handle(self, handle: Optional[IO[str]]) -> None:
        """Attach or detach an output stream."""
        self.handle = handle

    def set_level(self, level: TraceLevel) -> None:
        """Replace the enabled-category bitmask."""
        self.level = TraceLevel(level)

    def enabled(self, level: TraceLevel) -> bool:
        """True if events of ``level`` are currently recorded."""
        return bool(self.mask & int(level))

    # -- emission ------------------------------------------------------------

    def emit(self, level: TraceLevel, cycle: int, **fields: object) -> None:
        """Record an event if its category is enabled."""
        if not self.mask & level:
            return
        ev = TraceEvent(level, cycle, **fields)
        self.counts[level.name] = self.counts.get(level.name, 0) + 1
        if self.handle is not None:
            self.handle.write(ev.render() + "\n")
        events = self.events
        if len(events) == self.max_buffer:
            # Ring is full: appending below evicts the oldest event.
            self.dropped += 1
        events.append(ev)

    # -- convenience wrappers used by the pipeline ----------------------------

    def trace_stall(self, cycle: int, *, where: str, dev: int, src: int) -> None:
        """A push into a full queue."""
        self.emit(TraceLevel.STALL, cycle, where=where, dev=dev, src=src)

    def trace_bank_conflict(
        self, cycle: int, *, dev: int, quad: int, vault: int, bank: int, addr: int
    ) -> None:
        """A request blocked behind a busy bank."""
        self.emit(
            TraceLevel.BANK,
            cycle,
            dev=dev,
            quad=quad,
            vault=vault,
            bank=bank,
            addr=f"{addr:#x}",
        )

    def trace_rqst(
        self,
        cycle: int,
        *,
        op: str,
        dev: int,
        quad: int,
        vault: int,
        bank: int,
        addr: int,
        length: int,
    ) -> None:
        """A request executed by a vault.  ``op`` is the command name;
        for CMC commands it is the plugin's ``cmc_str`` value, which is
        what makes custom operations legible in traces (§IV.A)."""
        self.emit(
            TraceLevel.CMD,
            cycle,
            rqst=op,
            dev=dev,
            quad=quad,
            vault=vault,
            bank=bank,
            addr=f"{addr:#x}",
            length=length,
        )

    def trace_rsp(self, cycle: int, *, op: str, dev: int, link: int, tag: int) -> None:
        """A response retired to a link."""
        self.emit(TraceLevel.CMD, cycle, rsp=op, dev=dev, link=link, tag=tag)

    def trace_latency(self, cycle: int, *, tag: int, cycles: int) -> None:
        """End-to-end latency of one retired request."""
        self.emit(TraceLevel.LATENCY, cycle, tag=tag, cycles=cycles)

    def trace_power(self, cycle: int, *, op: str, energy_pj: float) -> None:
        """Energy attributed to one operation (future-work extension)."""
        self.emit(TraceLevel.POWER, cycle, op=op, energy_pj=round(energy_pj, 3))

    def trace_fault(self, cycle: int, *, kind: str, **fields: object) -> None:
        """An injected fault fired (or a recovery action ran).  ``kind``
        is the fault-event name; extra fields locate it (dev/vault/link/
        tag).  Rendered at FAULT level so ``analysis/traceview.py`` can
        reconstruct fault timelines from the bounded ring."""
        self.emit(TraceLevel.FAULT, cycle, kind=kind, **fields)

    # -- inspection ------------------------------------------------------------

    def render_all(self) -> str:
        """Render every buffered event as one string."""
        out = io.StringIO()
        for ev in self.events:
            out.write(ev.render() + "\n")
        return out.getvalue()

    def clear(self) -> None:
        """Drop buffered events and counters."""
        self.events.clear()
        self.counts.clear()
        self.dropped = 0
