"""Fixed-depth queues with HMC-Sim stall semantics.

Every queueing structure in the device — vault request queues and the
logic-layer crossbar request/response queues — is a bounded FIFO.  A
push into a full queue does not raise: it reports a *stall*, which the
caller (host or upstream pipeline stage) observes and retries on a
later cycle.  This is exactly the contract of ``hmcsim_send`` returning
``HMC_STALL``, and it is the mechanism behind the queue-pressure
effects in the paper's Figures 5-7.

Each queue counts pushes, pops, and stalls, and tracks a high-water
mark, feeding both the trace subsystem and the statistics used by the
ablation benchmark (E9 in DESIGN.md).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterator, Optional, TypeVar

__all__ = ["StallQueue"]

T = TypeVar("T")


class StallQueue(Generic[T]):
    """A bounded FIFO that reports stalls instead of raising when full.

    Args:
        depth: maximum number of in-flight entries (slots).
        name: label used in traces and statistics.
    """

    __slots__ = ("depth", "name", "_q", "pushes", "pops", "stalls", "high_water")

    def __init__(self, depth: int, name: str = "queue"):
        if depth < 1:
            raise ValueError("queue depth must be >= 1")
        self.depth = depth
        self.name = name
        self._q: Deque[T] = deque()
        self.pushes = 0
        self.pops = 0
        self.stalls = 0
        self.high_water = 0

    def push(self, item: T) -> bool:
        """Append ``item``; return False (and count a stall) if full."""
        q = self._q
        n = len(q) + 1
        if n > self.depth:
            self.stalls += 1
            return False
        q.append(item)
        self.pushes += 1
        if n > self.high_water:
            self.high_water = n
        return True

    def pop(self) -> Optional[T]:
        """Remove and return the head entry, or None if empty."""
        if not self._q:
            return None
        self.pops += 1
        return self._q.popleft()

    def peek(self) -> Optional[T]:
        """Return the head entry without removing it, or None if empty."""
        return self._q[0] if self._q else None

    def remove(self, item: T) -> None:
        """Remove a specific entry (the vault's out-of-order completion
        path under the timing model: a request finishing behind a
        busy-bank entry leaves the queue from the middle).

        Raises:
            ValueError: if the entry is not queued.
        """
        self._q.remove(item)
        self.pops += 1

    def requeue_head(self, item: T) -> None:
        """Put an entry back at the head (used when a pop must be undone,
        e.g. the downstream queue stalled after the entry was taken).

        Always succeeds, even when the queue already sits at full
        depth, and never records a stall: the entry logically still
        owns the slot its pop released, so re-seating it is
        bookkeeping, not a new arrival.  The matching pop is rolled
        back; an *unpaired* requeue (no pop recorded this epoch, e.g.
        after :meth:`reset_stats`) counts as a push instead, so the
        ``pushes - pops == occupancy`` identity holds either way.
        """
        q = self._q
        q.appendleft(item)
        if self.pops > 0:
            self.pops -= 1
        else:
            self.pushes += 1
        n = len(q)
        if n > self.high_water:
            self.high_water = n

    def __len__(self) -> int:
        return len(self._q)

    def __bool__(self) -> bool:
        return bool(self._q)

    def __iter__(self) -> Iterator[T]:
        return iter(self._q)

    @property
    def raw(self) -> Deque[T]:
        """The underlying deque, for allocation-free hot-path scans.

        The cycle engine's vault scan rotates this deque in place
        instead of copying the queue every cycle; callers mutating it
        directly are responsible for keeping the push/pop counters
        consistent (see :meth:`repro.hmc.vault.Vault.step`).
        """
        return self._q

    @property
    def full(self) -> bool:
        """True when a push would stall."""
        return len(self._q) >= self.depth

    @property
    def empty(self) -> bool:
        """True when a pop would return None."""
        return not self._q

    @property
    def occupancy(self) -> int:
        """Current number of queued entries."""
        return len(self._q)

    def clear(self) -> None:
        """Drop all entries (statistics are preserved)."""
        self._q.clear()

    def reset_stats(self) -> None:
        """Start a fresh statistics epoch.

        Entries still queued are carried into the new epoch as pushes
        (``pushes = occupancy``, ``pops = 0``): zeroing both counters
        on a non-empty queue would silently break the ``pushes - pops
        == occupancy`` identity that the invariant checker audits every
        cycle.
        """
        self.pushes = len(self._q)
        self.pops = self.stalls = 0
        self.high_water = len(self._q)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StallQueue({self.name!r}, {len(self._q)}/{self.depth}, "
            f"stalls={self.stalls})"
        )
