"""CRC-32 for HMC packet tails.

The HMC specification protects every packet with a 32-bit CRC carried
in the tail, computed with the Koopman polynomial ``0x741B8CD7`` over
the packet contents with the CRC field itself zeroed.  The simulator
computes and checks it so that packet-integrity behaviour (including
the ``DINV`` response bit) can be exercised in tests; checking can be
disabled per-simulation for speed.
"""

from __future__ import annotations

from typing import Iterable, List

__all__ = ["KOOPMAN_POLY", "crc32_koopman", "packet_crc"]

#: Koopman CRC-32 polynomial used by the HMC specification.
KOOPMAN_POLY = 0x741B8CD7


def _build_table(poly: int) -> List[int]:
    table = []
    for byte in range(256):
        crc = byte << 24
        for _ in range(8):
            if crc & 0x80000000:
                crc = ((crc << 1) ^ poly) & 0xFFFFFFFF
            else:
                crc = (crc << 1) & 0xFFFFFFFF
        table.append(crc)
    return table


_TABLE = _build_table(KOOPMAN_POLY)


def crc32_koopman(data: bytes) -> int:
    """Compute the HMC CRC-32 (Koopman polynomial, MSB-first) of ``data``."""
    crc = 0
    for byte in data:
        crc = ((crc << 8) & 0xFFFFFFFF) ^ _TABLE[((crc >> 24) ^ byte) & 0xFF]
    return crc


def packet_crc(words: Iterable[int]) -> int:
    """Compute the CRC over a packet expressed as 64-bit words.

    The tail word (the last element) has its CRC field — bits ``[63:32]``
    — zeroed before the computation, exactly as the specification
    requires ("CRC computed with the CRC field as zero").
    """
    ws = list(words)
    if not ws:
        return 0
    ws[-1] = ws[-1] & 0x00000000FFFFFFFF
    buf = b"".join(w.to_bytes(8, "little") for w in ws)
    return crc32_koopman(buf)
