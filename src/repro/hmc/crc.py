"""CRC-32 for HMC packet tails.

The HMC specification protects every packet with a 32-bit CRC carried
in the tail, computed with the Koopman polynomial ``0x741B8CD7`` over
the packet contents with the CRC field itself zeroed.  The simulator
computes and checks it so that packet-integrity behaviour (including
the ``DINV`` response bit) can be exercised in tests; checking can be
disabled per-simulation for speed.
"""

from __future__ import annotations

from typing import Iterable, List

__all__ = ["KOOPMAN_POLY", "crc32_koopman", "packet_crc"]

#: Koopman CRC-32 polynomial used by the HMC specification.
KOOPMAN_POLY = 0x741B8CD7


def _build_table(poly: int) -> List[int]:
    table = []
    for byte in range(256):
        crc = byte << 24
        for _ in range(8):
            if crc & 0x80000000:
                crc = ((crc << 1) ^ poly) & 0xFFFFFFFF
            else:
                crc = (crc << 1) & 0xFFFFFFFF
        table.append(crc)
    return table


_TABLE = _build_table(KOOPMAN_POLY)


def crc32_koopman(data: bytes) -> int:
    """Compute the HMC CRC-32 (Koopman polynomial, MSB-first) of ``data``."""
    crc = 0
    for byte in data:
        crc = ((crc << 8) & 0xFFFFFFFF) ^ _TABLE[((crc >> 24) ^ byte) & 0xFF]
    return crc


#: Little-endian byte order of a 64-bit word as right-shift amounts.
_WORD_SHIFTS = (0, 8, 16, 24, 32, 40, 48, 56)


def packet_crc(words: Iterable[int]) -> int:
    """Compute the CRC over a packet expressed as 64-bit words.

    The tail word (the last element) has its CRC field — bits ``[63:32]``
    — zeroed before the computation, exactly as the specification
    requires ("CRC computed with the CRC field as zero").

    This is a per-packet hot path (every wire image is CRC-stamped at
    build time), so the words are fed to the table directly — eight
    lookups per word in little-endian byte order, bit-identical to
    ``crc32_koopman`` over the packed byte string but without
    materializing any ``bytes`` object.
    """
    ws = list(words)
    if not ws:
        return 0
    ws[-1] = ws[-1] & 0x00000000FFFFFFFF
    crc = 0
    table = _TABLE
    for w in ws:
        for shift in _WORD_SHIFTS:
            crc = ((crc << 8) & 0xFFFFFFFF) ^ table[((crc >> 24) ^ (w >> shift)) & 0xFF]
    return crc
