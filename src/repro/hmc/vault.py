"""Vault controller: request queues, banks, and request execution.

This module is the reconstruction of ``hmcsim_process_rqst`` — the
"packet processing step" of §IV.C.2 where most of HMC-Sim's work
happens.  Each vault owns a bounded request queue (depth 64 in the
paper's evaluation) and its banks.  One request issues per vault per
cycle from the queue head; a busy target bank blocks the head (a *bank
conflict*), and a full response path re-queues it — both produce trace
events and the queueing pressure behind the paper's Figures 5-7.

Execution dispatch order, mirroring the paper's Figure 3:

1. CMC command codes are checked against the registry's *active* table;
   inactive codes produce an ``RSP_ERROR`` response (the C code returns
   an error from ``hmcsim_process_rqst``).
2. Active CMC commands execute through the plugin's resolved
   ``cmc_execute`` function; on success a trace entry is inserted using
   the plugin's ``cmc_str`` name and normal response construction
   resumes.
3. Specification commands take the built-in paths: read, write, mode
   register access, or the Gen2 atomic unit (:mod:`repro.hmc.amo`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Set, Tuple

from repro.errors import (
    CMCExecutionError,
    CMCNotActiveError,
    HMCAddressError,
    HMCSimError,
)
from repro.hmc.amo import execute_amo, is_amo
from repro.hmc.bank import Bank
from repro.hmc.commands import CommandKind, command_for_code, hmc_response_t
from repro.hmc.components import VaultScheduler, register_component
from repro.hmc.packet import RequestPacket, ResponsePacket, pack_data_cached
from repro.hmc.queue import StallQueue
from repro.hmc.trace import TraceLevel
from repro.hmc.xbar import Flight

_T_BANK = int(TraceLevel.BANK)
_T_CMD = int(TraceLevel.CMD)
_T_STALL = int(TraceLevel.STALL)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hmc.device import Device

__all__ = [
    "Vault",
    "FIFOVaultScheduler",
    "RoundRobinVaultScheduler",
    "process_rqst",
    "ERRSTAT_GENERIC",
    "ERRSTAT_ADDRESS",
    "ERRSTAT_CMC_INACTIVE",
    "ERRSTAT_CMC_FAILED",
    "ERRSTAT_ECC_UNCORRECTABLE",
]

#: ERRSTAT codes carried by RSP_ERROR responses.
ERRSTAT_GENERIC = 0x01
ERRSTAT_ADDRESS = 0x03
ERRSTAT_CMC_INACTIVE = 0x04
ERRSTAT_CMC_FAILED = 0x05
#: Carried by *poisoned* read responses (DINV set) when the fault
#: layer's SECDED ECC model sees an uncorrectable multi-bit flip.
ERRSTAT_ECC_UNCORRECTABLE = 0x06


class Vault:
    """One vault: request queue + banks + issue logic.

    The per-cycle request-pick policy is a pluggable component (seam
    ``vault_scheduler``): :meth:`step` delegates to the vault's
    :class:`~repro.hmc.components.VaultScheduler`, which the owning
    device creates through the component registry.
    """

    def __init__(
        self,
        index: int,
        quad: int,
        depth: int,
        num_banks: int,
        dev: int,
        scheduler: Optional[VaultScheduler] = None,
    ):
        self.index = index
        self.quad = quad
        self.dev = dev
        self.rqst_queue: StallQueue = StallQueue(
            depth, f"dev{dev}.vault{index}.rqst"
        )
        self.banks: List[Bank] = [Bank(b) for b in range(num_banks)]
        self.scheduler: VaultScheduler = scheduler or FIFOVaultScheduler()
        self.processed = 0
        self.bank_conflicts = 0
        self.response_stalls = 0
        # A response that could not enter the crossbar queue waits here
        # and blocks the vault until it is accepted (head-of-line
        # blocking).
        self._pending_rsp: Optional[Tuple[Flight, ResponsePacket]] = None
        # The owning device's active-vault set (None for standalone
        # vaults); every successful push marks this vault schedulable.
        self._sched: Optional[Set[int]] = None

    def push(self, flight: Flight) -> bool:
        """Enqueue a routed request; False on stall (queue full).

        ``StallQueue.push`` inlined (same counters and high-water
        semantics): one call per request on the crossbar drain path.
        """
        q = self.rqst_queue
        n = len(q._q) + 1
        if n > q.depth:
            q.stalls += 1
            return False
        q._q.append(flight)
        q.pushes += 1
        if n > q.high_water:
            q.high_water = n
        if self._sched is not None:
            self._sched.add(self.index)
        return True

    def step(self, device: "Device", cycle: int) -> None:
        """Process the request queue for this cycle.

        Delegates to the vault's scheduler component: the *policy*
        (which queued requests issue, and in what order) is the
        pluggable part; bank occupancy, request execution, and the
        response path are shared mechanism in this module.
        """
        self.scheduler.scan(self, device, cycle)

    def flush_pending(self, device: "Device", cycle: int) -> bool:
        """Retry a blocked response push.  Returns True when unblocked."""
        if self._pending_rsp is None:
            return True
        flight, rsp = self._pending_rsp
        if device.xbar.push_response(flight.src_link, rsp):
            self._pending_rsp = None
            self.processed += 1
            return True
        self.response_stalls += 1
        return False


@register_component("vault_scheduler", "fifo")
class FIFOVaultScheduler(VaultScheduler):
    """HMC-Sim's queue-order scan (seam key ``fifo``, the default).

    HMC-Sim walks the *entire* vault queue each clock: the queue
    models in-flight capacity, not issue serialization.  Entries
    are visited in FIFO order; an entry whose bank is busy records
    a *bank conflict* and is skipped (later entries to other banks
    still proceed — per-bank ordering is preserved, the vault is
    not head-of-line blocked).  Under the baseline model a bank
    access completes within the cycle, so everything queued
    executes in order each clock — which is what lets a queued
    ``hmc_trylock`` acquire a lock in the same cycle the preceding
    ``hmc_unlock`` released it, the fast handoff behind the
    paper's ~4-cycles-per-thread scaling.  Under the timing
    extension a request holds its bank for the DRAM service time
    and its response is produced when service completes.

    The scan stops when the vault's per-cycle response budget is
    exhausted or the response path fills.

    The walk is an allocation-free snapshot-scan: instead of
    copying the queue (``list(vault.rqst_queue)``, one list per
    vault per cycle), it visits the head-of-deque ``n`` times,
    rotating kept entries to the back and popping processed ones.
    After a full scan the kept entries are back in FIFO order; an
    early exit rotates them back explicitly.  Final queue content,
    ordering, and push/pop counters are identical to the copying
    scan.
    """

    def __init__(self, config: object = None):
        # Stateless policy; the config argument satisfies the factory
        # signature shared by every vault_scheduler registration.
        pass

    def scan(self, vault: Vault, device: "Device", cycle: int) -> None:
        queue = vault.rqst_queue
        dq = queue._q
        n0 = len(dq)
        if n0 == 0:
            return
        rsp_budget = device.config.vault_rsp_rate
        banks = vault.banks
        xbar = device.xbar
        tracer = device.sim.tracer
        tmask = tracer.mask
        visited = 0
        kept = 0
        while visited < n0:
            if rsp_budget <= 0:
                # The vault's response port is exhausted for this
                # cycle; remaining requests wait in the queue.
                if kept:
                    dq.rotate(kept)
                return
            flight = dq[0]
            bank = banks[flight.bank]
            if flight.service_until < 0:
                if cycle < bank.busy_until:
                    bank.conflicts += 1
                    vault.bank_conflicts += 1
                    if tmask & _T_BANK:
                        tracer.trace_bank_conflict(
                            cycle,
                            dev=vault.dev,
                            quad=vault.quad,
                            vault=vault.index,
                            bank=flight.bank,
                            addr=flight.pkt.addr,
                        )
                    dq.rotate(-1)
                    kept += 1
                    visited += 1
                    continue
                busy = _occupy(device, bank, cycle, flight)
                if busy > 0:
                    # Timing model: the request holds the bank and its
                    # response is produced when service completes.
                    flight.service_until = cycle + busy
                    dq.rotate(-1)
                    kept += 1
                    visited += 1
                    continue
            elif cycle < flight.service_until:
                # DRAM access still in progress.
                dq.rotate(-1)
                kept += 1
                visited += 1
                continue

            rsp = process_rqst(device, flight, cycle)

            if rsp is not None:
                if not xbar.push_response(flight.src_link, rsp):
                    # Response path full.  The memory side effect has
                    # already happened, so hold the *response* (not the
                    # request) and block the vault until it is accepted.
                    vault.response_stalls += 1
                    if tmask & _T_STALL:
                        tracer.trace_stall(
                            cycle,
                            where=f"vault{vault.index}.rsp",
                            dev=vault.dev,
                            src=flight.src_link,
                        )
                    vault._pending_rsp = (flight, rsp)
                    dq.popleft()
                    queue.pops += 1
                    if kept:
                        dq.rotate(kept)
                    return
                rsp_budget -= 1
            dq.popleft()
            queue.pops += 1
            vault.processed += 1
            visited += 1


@register_component("vault_scheduler", "round_robin")
class RoundRobinVaultScheduler(VaultScheduler):
    """Bank-fair scan (seam key ``round_robin``).

    Visits queued requests grouped by target bank, starting from a
    bank pointer that advances one bank per cycle, so no bank can
    monopolize the vault's per-cycle response budget.  *Within* a
    bank, requests still issue in arrival (FIFO) order — per-bank
    program order is preserved, so single-location workloads (the
    paper's mutex hot spot) and commutative updates (GUPS XOR) reach
    bit-identical memory states; only cross-bank interleaving, and
    therefore response timing, differs from the ``fifo`` policy.

    Mechanism semantics mirror :class:`FIFOVaultScheduler` exactly:
    same response budget, same bank-conflict accounting, same timing
    occupancy, and the same response-path parking (``_pending_rsp``)
    with head-of-line blocking until the crossbar accepts.
    """

    def __init__(self, config: object = None):
        self._next_bank = 0

    def scan(self, vault: Vault, device: "Device", cycle: int) -> None:
        queue = vault.rqst_queue
        dq = queue._q
        if not dq:
            return
        num_banks = len(vault.banks)
        start = self._next_bank
        self._next_bank = (start + 1) % num_banks
        entries = list(dq)
        # Stable sort by (distance from the start bank, arrival index):
        # banks take round-robin turns while each bank's own requests
        # keep FIFO order.
        order = sorted(
            range(len(entries)),
            key=lambda i: ((entries[i].bank - start) % num_banks, i),
        )
        rsp_budget = device.config.vault_rsp_rate
        banks = vault.banks
        xbar = device.xbar
        tracer = device.sim.tracer
        tmask = tracer.mask
        removed: Set[int] = set()
        for i in order:
            if rsp_budget <= 0:
                break
            flight = entries[i]
            bank = banks[flight.bank]
            if flight.service_until < 0:
                if cycle < bank.busy_until:
                    bank.conflicts += 1
                    vault.bank_conflicts += 1
                    if tmask & _T_BANK:
                        tracer.trace_bank_conflict(
                            cycle,
                            dev=vault.dev,
                            quad=vault.quad,
                            vault=vault.index,
                            bank=flight.bank,
                            addr=flight.pkt.addr,
                        )
                    continue
                busy = _occupy(device, bank, cycle, flight)
                if busy > 0:
                    flight.service_until = cycle + busy
                    continue
            elif cycle < flight.service_until:
                continue

            rsp = process_rqst(device, flight, cycle)

            if rsp is not None:
                if not xbar.push_response(flight.src_link, rsp):
                    vault.response_stalls += 1
                    if tmask & _T_STALL:
                        tracer.trace_stall(
                            cycle,
                            where=f"vault{vault.index}.rsp",
                            dev=vault.dev,
                            src=flight.src_link,
                        )
                    vault._pending_rsp = (flight, rsp)
                    removed.add(i)
                    queue.pops += 1
                    break
                rsp_budget -= 1
            removed.add(i)
            queue.pops += 1
            vault.processed += 1
        if removed:
            dq.clear()
            dq.extend(e for j, e in enumerate(entries) if j not in removed)


def _error_response(
    device: "Device", flight: Flight, errstat: int
) -> ResponsePacket:
    """Build an RSP_ERROR response for a failed request."""
    return ResponsePacket(
        cmd=int(hmc_response_t.RSP_ERROR),
        tag=flight.pkt.tag,
        cub=device.dev,
        slid=flight.src_link,
        errstat=errstat,
        inject_cycle=flight.inject_cycle,
        origin_dev=flight.origin_dev,
        origin_link=flight.src_link,
    )


def process_rqst(
    device: "Device", flight: Flight, cycle: int
) -> Optional[ResponsePacket]:
    """Execute one request against the device — ``hmcsim_process_rqst``.

    Returns the response packet, or None for posted commands.
    Execution errors never raise out of the pipeline: they become
    ``RSP_ERROR`` responses (or, for *posted* requests, are counted
    and dropped) so a misbehaving request cannot wedge the simulation.
    """
    pkt: RequestPacket = flight.pkt
    info = flight.info
    if info is None:
        # Manually built flights (tests, external drivers) have no
        # precomputed routing; resolve and cache it now.
        info = flight.info = command_for_code(pkt.cmd)
    op_name: Optional[str] = None  # resolved lazily (tracing/power only)
    mem = device  # device provides mem_read/mem_write with bounds checks

    rsp_cmd: int = info.rsp_cmd_code
    rsp_data = b""
    errstat = 0
    posted = info.posted
    poisoned = False
    faults = device.sim.faults

    try:
        if info.kind is CommandKind.FLOW:
            # Flow packets are link-layer; they carry no memory semantics.
            return None

        if info.kind is CommandKind.CMC:
            if (
                faults is not None
                and faults.has_cmc
                and faults.cmc.crashes(device.dev, flight, cycle)
            ):
                # Injected plugin failure: raise inside the isolation
                # boundary below, so it becomes an RSP_ERROR response
                # exactly like an organically misbehaving plugin.
                raise CMCExecutionError(
                    f"injected CMC crash (cmd {pkt.cmd}, tag {pkt.tag})"
                )
            wire = pkt._wire()  # one memoized encode: head and tail together
            op, rsp_data, rsp_cmd = device.cmc.execute(
                device.sim,
                dev=device.dev,
                quad=flight.quad,
                vault=flight.vault,
                bank=flight.bank,
                addr=pkt.addr,
                length=pkt.lng,
                head=wire[0],
                tail=wire[2],
                rqst_payload=pack_data_cached(pkt.data),
            )
            op_name = op.cmc_str()
            posted = op.registration.posted
        elif info.kind is CommandKind.READ:
            rsp_data = mem.mem_read(pkt.addr, info.rsp_data_bytes or 0)
            if faults is not None and faults.has_dram:
                rsp_data, ecc_stat = faults.dram.on_read(
                    device, flight, rsp_data, cycle
                )
                if ecc_stat:
                    # Uncorrectable ECC: deliver the corrupt data as a
                    # poisoned response rather than silently dropping
                    # the request — the host sees DINV + ERRSTAT.
                    errstat = ecc_stat
                    poisoned = True
        elif info.kind in (CommandKind.WRITE, CommandKind.POSTED_WRITE):
            mem.mem_write(pkt.addr, pkt.data)
        elif info.kind is CommandKind.MODE:
            if info.rqst_name == "MD_RD":
                value = device.registers.read(pkt.addr)
                rsp_data = value.to_bytes(8, "little") + bytes(8)
            else:  # MD_WR
                device.registers.write(
                    pkt.addr, int.from_bytes(pkt.data[:8], "little")
                )
        elif is_amo(pkt.cmd):
            result = execute_amo(mem.amo_view(), pkt.addr, pkt.cmd, pkt.data)
            rsp_data = result.rsp_data
            errstat = result.errstat
        else:  # pragma: no cover - command table is exhaustive
            raise HMCSimError(f"unhandled command {pkt.cmd}")
    except CMCNotActiveError:
        device.cmc_rejects += 1
        return None if posted else _error_response(device, flight, ERRSTAT_CMC_INACTIVE)
    except CMCExecutionError:
        device.cmc_failures += 1
        return None if posted else _error_response(device, flight, ERRSTAT_CMC_FAILED)
    except HMCAddressError:
        return None if posted else _error_response(device, flight, ERRSTAT_ADDRESS)
    except HMCSimError:
        return None if posted else _error_response(device, flight, ERRSTAT_GENERIC)

    tracer = device.sim.tracer
    if tracer.mask & _T_CMD:
        if op_name is None:
            op_name = info.rqst_name
        tracer.trace_rqst(
            cycle,
            op=op_name,
            dev=device.dev,
            quad=flight.quad,
            vault=flight.vault,
            bank=flight.bank,
            addr=pkt.addr,
            length=pkt.lng,
        )
    if device.power is not None:
        if op_name is None:
            op_name = info.rqst_name
        rsp_flits = 1 + len(rsp_data) // 16 if not posted else 0
        pj = device.power.request_energy(info, pkt.lng, rsp_flits)
        device.power_report.add(op_name, pj)
        tracer.trace_power(cycle, op=op_name, energy_pj=pj)

    if posted:
        return None
    return ResponsePacket(
        cmd=rsp_cmd,
        tag=pkt.tag,
        cub=device.dev,
        slid=flight.src_link,
        data=rsp_data,
        errstat=errstat,
        # A poisoned request (Pb set in the tail) marks its response
        # data invalid, per the specification's poison semantics; an
        # uncorrectable ECC event poisons the response the same way.
        dinv=1 if poisoned else pkt.pb,
        inject_cycle=flight.inject_cycle,
        origin_dev=flight.origin_dev,
        origin_link=flight.src_link,
    )


def _occupy(device: "Device", bank: Bank, cycle: int, flight: Flight) -> int:
    """Charge the bank for this access under the active timing model.

    Returns the service time in cycles (0 under the baseline model:
    a bank access completes within the cycle it is issued, behaviour
    being queueing-dominated; the timing extension makes banks hold
    state across cycles, delaying responses and producing conflicts).
    """
    if device.timing is None:
        bank.occupy(cycle, 0, -1, True)
        return 0
    info = flight.info
    if info is None:
        info = flight.info = command_for_code(flight.pkt.cmd)
    row = flight.row
    if row < 0:
        row = flight.row = device.row_of(flight.pkt.addr)
    busy = device.timing.request_cycles(info, bank.open_row, row)
    row_hit = bank.open_row == row
    bank.occupy(cycle, busy, row, row_hit)
    return busy
