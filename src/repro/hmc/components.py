"""Pipeline-component interfaces and the component registry.

HMC-Sim 2.0's headline contribution is extensibility: CMC plugins add
new *memory-side operations* without touching the simulator core
(paper §IV).  This module applies the same philosophy to the core's
*structural* seams.  Each stage of the device pipeline is an explicit
interface, and concrete implementations register here under string
keys — exactly how :class:`repro.core.cmc.CMCRegistry` keys custom
operations by command code — so new crossbar models, vault scheduling
policies, link-flow models, multi-cube topologies, and memory backends
become plugin-sized changes selected through :class:`HMCConfig`.

The five seams:

=================  ==========================  ===========================
seam               interface                   built-in keys
=================  ==========================  ===========================
``xbar``           :class:`CrossbarModel`      ``queued``, ``ideal``
``vault_scheduler``:class:`VaultScheduler`     ``fifo``, ``round_robin``
``link_flow``      :class:`LinkFlow`           ``none``, ``tokens``
``topology``       :class:`TopologyRouter`     ``chain``, ``ring``
``memory``         :class:`MemoryModel`        ``paged``, ``chunked``
=================  ==========================  ===========================

Built-ins self-register from their home modules (imported by
:mod:`repro.hmc.composition`); third-party components call
:func:`register_component` with their own key — see
``docs/ARCHITECTURE.md`` for the end-to-end recipe.

This module deliberately imports nothing from the rest of
:mod:`repro.hmc`: interfaces must not depend on implementations, and
:mod:`repro.hmc.config` validates selections through the registry
without creating an import cycle.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ComponentError

__all__ = [
    "SEAMS",
    "ComponentRegistry",
    "COMPONENTS",
    "register_component",
    "CrossbarModel",
    "VaultScheduler",
    "LinkFlow",
    "TopologyRouter",
    "MemoryModel",
]

#: The recognised seam names, in pipeline order.
SEAMS: Tuple[str, ...] = (
    "xbar",
    "vault_scheduler",
    "link_flow",
    "topology",
    "memory",
)


# ---------------------------------------------------------------------------
# Seam interfaces
# ---------------------------------------------------------------------------


class CrossbarModel(ABC):
    """The logic-layer crossbar of one device (seam ``xbar``).

    Connects a device's links to its vaults through per-link request
    and response queues.  Implementations must maintain the O(1)
    occupancy counters ``rqst_occ`` / ``rsp_occ`` (the active-set
    scheduler's idle test reads them every cycle) and expose the
    per-link ``rqst_queues`` / ``rsp_queues`` StallQueue lists that
    :class:`repro.hmc.device.Device` drains.

    Factory signature: ``factory(config, dev) -> CrossbarModel``.
    """

    #: Entries currently queued on the request side (all links).
    rqst_occ: int
    #: Entries currently queued on the response side (all links).
    rsp_occ: int

    @abstractmethod
    def inject(self, link: int, flight: Any) -> bool:
        """Push a new request into a link's queue; False on stall."""

    @abstractmethod
    def push_response(self, link: int, rsp: Any) -> bool:
        """Queue a completed response toward its source link."""

    @abstractmethod
    def head_request(self, link: int) -> Optional[Any]:
        """Peek the head of a link's request queue."""

    @abstractmethod
    def pop_request(self, link: int) -> Optional[Any]:
        """Pop the head of a link's request queue."""

    @abstractmethod
    def unpop_request(self, link: int, flight: Any) -> None:
        """Undo a pop after a downstream stall (entry keeps its place).

        Must succeed — without recording a stall — even when the queue
        is at full depth, because the entry logically still owns its
        slot (see :meth:`repro.hmc.queue.StallQueue.requeue_head`).
        """

    @abstractmethod
    def pop_response(self, link: int) -> Optional[Any]:
        """Pop the head of a link's response queue (for retirement)."""

    @abstractmethod
    def total_stalls(self) -> int:
        """Stall count across all crossbar queues."""

    @abstractmethod
    def occupancy(self) -> int:
        """Entries currently queued across all crossbar queues."""


class VaultScheduler(ABC):
    """The request-pick policy of one vault (seam ``vault_scheduler``).

    Owns the per-cycle walk over a vault's request queue: which queued
    requests issue this cycle, and in what order.  Implementations must
    preserve the pipeline invariants the device relies on:

    * per-bank FIFO order — two requests to the same bank never
      reorder;
    * the vault's per-cycle response budget
      (``config.vault_rsp_rate``) bounds issued responses;
    * a response refused by the crossbar parks in
      ``vault._pending_rsp`` and blocks the vault;
    * queue push/pop counters stay consistent with the actual queue
      mutations.

    One scheduler instance is created *per vault* (policy state such as
    a round-robin pointer is vault-local).

    Factory signature: ``factory(config) -> VaultScheduler``.
    """

    @abstractmethod
    def scan(self, vault: Any, device: Any, cycle: int) -> None:
        """Process ``vault``'s request queue for this cycle."""


class LinkFlow(ABC):
    """Link-layer flow control and retry (seam ``link_flow``).

    The credit/retry contract of the HMC specification's link layer:
    token acquisition before transmit, retry-buffer bookkeeping, CRC
    corruption checks, and replay scheduling.  The ``none`` key maps to
    no model at all (``HMCSim.flow is None``), which is the baseline
    datapath with zero perturbation.

    Factory signature: ``factory(config) -> Optional[LinkFlow]``.
    """

    @abstractmethod
    def try_acquire(self, dev: int, link: int, flits: int) -> bool:
        """Consume transmit credit; False on a token stall."""

    @abstractmethod
    def refund(self, dev: int, link: int, flits: int) -> None:
        """Return credit for a packet that was never transmitted."""

    @abstractmethod
    def on_transmit(self, dev: int, link: int, flits: int, packet: Any) -> int:
        """Record a transmitted packet; returns its sequence number."""

    @abstractmethod
    def transmission_corrupted(self, dev: int, link: int, seq: int) -> bool:
        """Whether transmission ``seq`` suffered a CRC error."""

    @abstractmethod
    def acknowledge(self, dev: int, link: int, seq: int) -> None:
        """Release packet ``seq``'s retry slot and return its tokens."""

    @abstractmethod
    def negative_acknowledge(
        self, dev: int, link: int, seq: int, cycle: int, tag: int
    ) -> None:
        """Drop packet ``seq`` on a CRC error and schedule its replay."""

    @abstractmethod
    def schedule_replay(
        self, dev: int, link: int, ready_cycle: int, packet: Any
    ) -> None:
        """Re-queue a replay that could not re-enter the link."""

    @abstractmethod
    def due_replays(self, dev: int, link: int, cycle: int) -> List[Any]:
        """Packets whose retry latency has elapsed (removed)."""

    @abstractmethod
    def replay_links(self, dev: int) -> Set[int]:
        """Links of ``dev`` that currently hold scheduled replays."""

    @abstractmethod
    def has_pending_replays(self) -> bool:
        """True when any link of any device holds a scheduled replay."""


class TopologyRouter(ABC):
    """Multi-cube routing between devices (seam ``topology``).

    Owns the inter-device delay lines: requests whose CUB names
    another cube, and responses making the return trip.

    Factory signature: ``factory(sim) -> TopologyRouter``.
    """

    @abstractmethod
    def forward_request(self, from_dev: int, flight: Any, link: int) -> None:
        """Launch a request toward its target cube."""

    @abstractmethod
    def forward_response(self, from_dev: int, rsp: Any, cycle: int) -> None:
        """Launch a response back toward its originating cube."""

    @abstractmethod
    def clock(self, cycle: int) -> None:
        """Deliver in-transit packets whose hop delay has elapsed."""

    @abstractmethod
    def hop_distance(self, a: int, b: int) -> int:
        """Hops between cubes ``a`` and ``b`` under this wiring."""

    @property
    @abstractmethod
    def in_transit(self) -> int:
        """Packets currently travelling between cubes."""


class MemoryModel(ABC):
    """Byte-addressable backing store for device memory (seam ``memory``).

    Holds the real data the paper's CMC/atomic operations read-modify-
    write.  Cold regions must read as zero (the known initial state the
    mutex model relies on).

    Factory signature: ``factory(capacity_bytes) -> MemoryModel``.
    """

    #: Total bytes addressable through this store.
    capacity: int

    @abstractmethod
    def read(self, addr: int, nbytes: int) -> bytes:
        """Read ``nbytes`` at ``addr`` (zero-fill for untouched space)."""

    @abstractmethod
    def write(self, addr: int, data: bytes) -> None:
        """Write ``data`` starting at ``addr``."""

    @abstractmethod
    def view(self, base: int, size: int) -> Any:
        """A bounds-checked window rebased to address 0."""

    @abstractmethod
    def iter_resident(self) -> Any:
        """Yield ``(base_address, bytes)`` for each materialized region."""

    @abstractmethod
    def clear(self) -> None:
        """Drop all state, returning the store to all-zeros."""


#: interface enforced per seam (used by register-time validation).
_SEAM_INTERFACE: Dict[str, type] = {
    "xbar": CrossbarModel,
    "vault_scheduler": VaultScheduler,
    "link_flow": LinkFlow,
    "topology": TopologyRouter,
    "memory": MemoryModel,
}


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------


class ComponentRegistry:
    """String-keyed factories for every pipeline seam.

    The structural mirror of :class:`repro.core.cmc.CMCRegistry`: where
    that registry maps *command codes* to custom memory operations,
    this one maps ``(seam, key)`` pairs to component factories, so the
    simulator core composes its pipeline without naming any concrete
    class.
    """

    def __init__(self) -> None:
        self._factories: Dict[str, Dict[str, Callable[..., Any]]] = {
            seam: {} for seam in SEAMS
        }

    def register(
        self,
        seam: str,
        key: str,
        factory: Callable[..., Any],
        *,
        replace: bool = False,
    ) -> None:
        """Install ``factory`` under ``(seam, key)``.

        Raises:
            ComponentError: unknown seam, empty key, or an occupied key
                (unless ``replace`` is set).
        """
        table = self._factories.get(seam)
        if table is None:
            raise ComponentError(
                f"unknown seam {seam!r}: expected one of {', '.join(SEAMS)}"
            )
        if not key or not isinstance(key, str):
            raise ComponentError(f"component key must be a non-empty string, got {key!r}")
        if key in table and not replace:
            raise ComponentError(
                f"seam {seam!r} already has an implementation registered "
                f"under {key!r} (pass replace=True to override)"
            )
        table[key] = factory

    def get(self, seam: str, key: str) -> Callable[..., Any]:
        """The factory at ``(seam, key)``.

        Raises:
            ComponentError: unknown seam or unregistered key.
        """
        table = self._factories.get(seam)
        if table is None:
            raise ComponentError(
                f"unknown seam {seam!r}: expected one of {', '.join(SEAMS)}"
            )
        factory = table.get(key)
        if factory is None:
            known = ", ".join(sorted(table)) or "<none>"
            raise ComponentError(
                f"no {seam!r} implementation registered under {key!r} "
                f"(known keys: {known})"
            )
        return factory

    def create(self, seam: str, key: str, *args: Any, **kwargs: Any) -> Any:
        """Instantiate the component at ``(seam, key)``.

        The created instance is checked against the seam's interface
        (``None`` is allowed — the ``link_flow`` seam uses it for the
        no-model baseline).
        """
        component = self.get(seam, key)(*args, **kwargs)
        iface = _SEAM_INTERFACE[seam]
        if component is not None and not isinstance(component, iface):
            raise ComponentError(
                f"{seam!r} implementation {key!r} produced "
                f"{type(component).__name__}, which does not implement "
                f"{iface.__name__}"
            )
        return component

    def keys(self, seam: str) -> Tuple[str, ...]:
        """Registered keys for ``seam``, sorted."""
        table = self._factories.get(seam)
        if table is None:
            raise ComponentError(
                f"unknown seam {seam!r}: expected one of {', '.join(SEAMS)}"
            )
        return tuple(sorted(table))

    def seams(self) -> Tuple[str, ...]:
        """All seam names."""
        return SEAMS

    def has(self, seam: str, key: str) -> bool:
        """True when ``(seam, key)`` is registered."""
        table = self._factories.get(seam)
        return table is not None and key in table


#: The process-wide registry every simulation composes from.
COMPONENTS = ComponentRegistry()


def register_component(
    seam: str, key: str, *, replace: bool = False
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Class/function decorator registering a factory in :data:`COMPONENTS`.

    Usage (this is the whole third-party integration surface)::

        @register_component("xbar", "my_model")
        class MyXBar(CrossbarModel):
            def __init__(self, config, dev): ...
    """

    def _decorator(factory: Callable[..., Any]) -> Callable[..., Any]:
        COMPONENTS.register(seam, key, factory, replace=replace)
        return factory

    return _decorator
