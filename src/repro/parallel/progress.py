"""Progress reporting hooks for the parallel experiment engine.

The executor reports completion through a plain callback::

    def progress(done: int, total: int, spec: TaskSpec, cached: bool) -> None

called once per finished point (cache hits included, flagged), in
result order.  :class:`ProgressPrinter` is the stock implementation
used by the CLI's ``--jobs`` runs; ``null_progress`` is the default
no-op.
"""

from __future__ import annotations

from typing import IO, Any, Callable, Optional

__all__ = ["ProgressFn", "ProgressPrinter", "make_progress", "null_progress"]

#: Signature of the executor's progress hook.
ProgressFn = Callable[[int, int, Any, bool], None]


def null_progress(done: int, total: int, spec: Any, cached: bool) -> None:
    """The default hook: report nothing."""


class ProgressPrinter:
    """Writes one status line per completed point to a stream.

    Lines are carriage-return overwritten on TTY-like streams and
    newline-separated otherwise (so CI logs stay readable); a final
    summary with cache-hit counts is flushed by :meth:`finish`.
    """

    def __init__(self, stream: IO[str], label: str = "sweep") -> None:
        self.stream = stream
        self.label = label
        self.cached = 0
        self._last_len = 0
        self._tty = bool(getattr(stream, "isatty", lambda: False)())

    def __call__(self, done: int, total: int, spec: Any, cached: bool) -> None:
        if cached:
            self.cached += 1
        detail = getattr(spec, "threads", None)
        line = f"{self.label}: {done}/{total}"
        if detail is not None:
            line += f" (threads={detail}{', cached' if cached else ''})"
        self._emit(line, final=done >= total)

    def finish(self, total: int) -> None:
        """Write the closing summary line."""
        self._emit(
            f"{self.label}: {total} points done, {self.cached} from cache",
            final=True,
        )

    def _emit(self, line: str, *, final: bool) -> None:
        if self._tty:
            pad = " " * max(0, self._last_len - len(line))
            end = "\n" if final else ""
            self.stream.write(f"\r{line}{pad}{end}")
        else:
            self.stream.write(line + "\n")
        self._last_len = len(line)
        self.stream.flush()


def make_progress(stream: Optional[IO[str]], label: str = "sweep") -> ProgressFn:
    """A printer bound to ``stream``, or the no-op hook for ``None``."""
    return ProgressPrinter(stream, label) if stream is not None else null_progress
