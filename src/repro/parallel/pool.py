"""The multiprocess sweep executor.

:class:`SweepExecutor` fans a list of independent
:class:`~repro.parallel.tasks.TaskSpec` points across a worker pool
and reassembles the results **in submission order**, so a parallel
sweep is bit-identical to the serial one: every point is a pure
function of its spec, and ordering is restored by index, never by
completion time.

Design points:

* **Structural parity.**  ``jobs=1`` does not fork at all — it runs
  :func:`repro.parallel.tasks.run_task` in-process, the *same*
  function every pool worker executes.  There is no separate serial
  code path to drift.
* **Chunked scheduling.**  Points are grouped into contiguous chunks
  (default ~4 chunks per worker) so process spawn and pickle overhead
  amortizes over many short simulations; ``Pool.imap`` preserves chunk
  order.
* **Cache integration.**  Hits are resolved in the parent before any
  worker starts; only misses are dispatched, and their results are
  stored by the parent (single writer, simple accounting).
* **Progress.**  A callback fires once per completed point — cache
  hits first, then computed points in order — see
  :mod:`repro.parallel.progress`.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, List, Optional, Sequence

from repro.parallel.cache import SweepCache
from repro.parallel.progress import ProgressFn, null_progress
from repro.parallel.tasks import TaskSpec, cache_key, decode_result, encode_result, run_task

__all__ = ["SweepExecutor", "resolve_jobs"]


def resolve_jobs(jobs: int) -> int:
    """Normalize a ``jobs`` request: 0 or negative means "all cores"."""
    if jobs > 0:
        return jobs
    return os.cpu_count() or 1


def _run_chunk(chunk: List[TaskSpec]) -> List[Any]:
    """Worker entry point: execute one contiguous chunk of specs."""
    return [run_task(spec) for spec in chunk]


class SweepExecutor:
    """Deterministic fan-out of independent simulation points.

    Args:
        jobs: worker processes; 1 runs in-process (no fork), 0 or
            negative uses every core.
        cache: persistent result cache; None disables caching.
        progress: per-point completion hook (see
            :mod:`repro.parallel.progress`).
        chunk_size: specs per worker chunk; default sizes to roughly
            four chunks per worker.
        mp_context: multiprocessing start-method context; default is
            the platform default (``fork`` on Linux — cheap and
            sufficient since specs carry everything workers need).
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        cache: Optional[SweepCache] = None,
        progress: Optional[ProgressFn] = None,
        chunk_size: Optional[int] = None,
        mp_context: Optional[Any] = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.progress = progress or null_progress
        self.chunk_size = chunk_size
        self.mp_context = mp_context

    def run(self, specs: Sequence[TaskSpec]) -> List[Any]:
        """Execute every spec; results ordered like ``specs``."""
        specs = list(specs)
        total = len(specs)
        results: List[Any] = [None] * total
        done = 0

        # Resolve cache hits up front; only misses are dispatched.
        pending: List[int] = []
        if self.cache is not None:
            for i, spec in enumerate(specs):
                payload = self.cache.get(cache_key(spec))
                if payload is None:
                    pending.append(i)
                else:
                    results[i] = decode_result(payload)
                    done += 1
                    self.progress(done, total, spec, True)
        else:
            pending = list(range(total))

        if not pending:
            return results

        workers = min(self.jobs, len(pending))
        if workers <= 1:
            for i in pending:
                results[i] = self._finish(specs[i], run_task(specs[i]))
                done += 1
                self.progress(done, total, specs[i], False)
            return results

        chunks = self._chunk([specs[i] for i in pending], workers)
        ctx = self.mp_context or multiprocessing.get_context()
        cursor = 0
        # Explicit terminate-on-error cleanup rather than the bare
        # ``with`` block: a worker exception surfacing from ``imap`` (or
        # a KeyboardInterrupt in the parent) must kill the outstanding
        # workers *and* reap them before the exception propagates —
        # ``Pool.__exit__`` terminates but never joins, which leaves
        # orphaned pool processes behind exactly when a long-lived
        # caller (the serve fleet multiplexes sessions over this pool)
        # would accumulate them.
        pool = ctx.Pool(processes=workers)
        try:
            for chunk_results in pool.imap(_run_chunk, chunks):
                for result in chunk_results:
                    i = pending[cursor]
                    cursor += 1
                    results[i] = self._finish(specs[i], result)
                    done += 1
                    self.progress(done, total, specs[i], False)
            pool.close()
        except BaseException:
            pool.terminate()
            raise
        finally:
            pool.join()
        return results

    def _finish(self, spec: TaskSpec, result: Any) -> Any:
        if self.cache is not None:
            self.cache.put(cache_key(spec), encode_result(result))
        return result

    def _chunk(self, specs: List[TaskSpec], workers: int) -> List[List[TaskSpec]]:
        """Contiguous chunks, sized to amortize spawn+pickle overhead."""
        if self.chunk_size is not None:
            size = max(1, self.chunk_size)
        else:
            size = max(1, -(-len(specs) // (workers * 4)))
        return [specs[i : i + size] for i in range(0, len(specs), size)]
