"""Picklable task specs for the parallel experiment engine.

A sweep is a list of fully independent simulation points.  Each point
is described by a :class:`TaskSpec` — a frozen, picklable value object
carrying everything a worker process needs to reproduce the point from
scratch: the validated :class:`~repro.hmc.config.HMCConfig` (which
includes the component selections for every pipeline seam), the thread
count, any extra kernel parameters, and the dotted path of the runner
function that executes it.

The spec also defines the *cache identity* of the point.  The
persistent result cache (:mod:`repro.parallel.cache`) keys an entry by
:func:`cache_key`, which folds together

* the **config fingerprint** — every field of the configuration, so
  two configs that differ in any knob (including component overrides)
  can never alias;
* the **component fingerprint** — the ``module:qualname`` of the
  factory registered for each selected seam implementation, so
  swapping the code behind a registry key invalidates old entries;
* the **workload fingerprint** — resolved through the workload
  registry when the spec's kernel name is registered there (the class
  identity plus its declared ``version``, see
  :meth:`repro.workloads.registry.WorkloadRegistry.fingerprint`), so
  re-pointing a registry name at different code — or bumping a
  workload's version — invalidates old entries; unregistered kernels
  fall back to the spec's literal ``kernel_version`` tag;
* the **fault-plan fingerprint** — present only when the spec carries a
  :class:`~repro.faults.plan.FaultPlan`, so a faulty point can never
  alias a fault-free one (and fault-free keys are unchanged from before
  fault injection existed);
* the thread count and sorted kernel parameters.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import asdict, dataclass, fields
from typing import Any, Callable, Dict, Optional, Tuple

from repro.faults.plan import FaultPlan
from repro.hmc.components import COMPONENTS
from repro.hmc.config import HMCConfig

__all__ = [
    "TaskSpec",
    "config_fingerprint",
    "component_fingerprint",
    "cache_key",
    "run_task",
    "encode_result",
    "decode_result",
]


@dataclass(frozen=True)
class TaskSpec:
    """One independent simulation point of a parameter sweep.

    Attributes:
        kernel: short kernel name (``"mutex"``), used in cache keys and
            progress lines.
        kernel_version: the kernel's cycle-semantics tag; a bump
            invalidates every cached result of that kernel.
        runner: ``"module.path:callable"`` of the function that takes
            this spec and returns the point's result.  Resolved by
            import in the executing process, so specs stay picklable
            under any multiprocessing start method.
        config: device configuration for the point.
        threads: thread count (the sweep axis of Figures 5-7).
        params: extra kernel parameters as a sorted tuple of
            ``(name, value)`` pairs; values must be JSON-representable.
        fault_plan: optional :class:`~repro.faults.plan.FaultPlan` the
            runner attaches to the simulation.  Part of the cache key
            (the plan fingerprint plus seed) whenever set, so faulty
            results can never be served for fault-free requests or for
            a different plan/seed.
    """

    kernel: str
    kernel_version: str
    runner: str
    config: HMCConfig
    threads: int
    params: Tuple[Tuple[str, Any], ...] = ()
    fault_plan: Optional[FaultPlan] = None

    def param_dict(self) -> Dict[str, Any]:
        """The extra kernel parameters as a dict."""
        return dict(self.params)


def config_fingerprint(config: HMCConfig) -> str:
    """Hex digest over *every* configuration field.

    Unlike the retired in-process sweep cache (keyed on the config's
    ``repr``), the fingerprint is explicit about its inputs: the full
    validated field set, serialized canonically.  Two configurations
    differing in any knob — queue depths, rates, interleave, component
    selections — get distinct fingerprints.
    """
    doc = {f.name: getattr(config, f.name) for f in fields(config)}
    return _digest(doc)


def component_fingerprint(config: HMCConfig) -> str:
    """Hex digest over the *implementations* behind the selected seams.

    The config names each seam's implementation by registry key; this
    fingerprint resolves every key to the registered factory's
    ``module:qualname`` so that re-pointing a key at different code
    invalidates cached results built with the old pipeline.
    """
    doc = {
        seam: f"{factory.__module__}:{getattr(factory, '__qualname__', factory.__class__.__name__)}"
        for seam, factory in (
            (seam, COMPONENTS.get(seam, key))
            for seam, key in sorted(config.component_selection().items())
        )
    }
    return _digest(doc)


def cache_key(spec: TaskSpec) -> str:
    """Stable, filesystem-safe cache key for one task spec.

    Fault-free specs keep the historical five-segment key shape; a
    spec carrying a fault plan appends a ``f<fingerprint>`` segment
    covering the plan's kinds, resolved parameters, and seed.

    The version segment resolves through the workload registry when
    the kernel name is registered there, so the cache key tracks the
    *implementation* behind the name (no-alias: swapping the class or
    bumping its ``version`` changes the key).  Unregistered kernel
    names use the spec's literal ``kernel_version``.
    """
    from repro.workloads.registry import WORKLOADS

    version = (
        WORKLOADS.fingerprint(spec.kernel)
        if WORKLOADS.has(spec.kernel)
        else spec.kernel_version
    )
    segments = [
        spec.kernel,
        version,
        config_fingerprint(spec.config),
        component_fingerprint(spec.config),
        f"t{spec.threads}",
        _digest({k: v for k, v in spec.params}),
    ]
    if spec.fault_plan is not None:
        segments.append(f"f{spec.fault_plan.fingerprint()}")
    return "-".join(segments)


def _digest(doc: Dict[str, Any]) -> str:
    blob = json.dumps(doc, sort_keys=True, default=str).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


_RUNNERS: Dict[str, Callable[[TaskSpec], Any]] = {}


def _resolve_runner(path: str) -> Callable[[TaskSpec], Any]:
    fn = _RUNNERS.get(path)
    if fn is None:
        module_name, sep, attr = path.partition(":")
        if not sep:
            raise ValueError(f"bad runner path {path!r} (expected 'module:callable')")
        fn = getattr(importlib.import_module(module_name), attr)
        _RUNNERS[path] = fn
    return fn


def run_task(spec: TaskSpec) -> Any:
    """Execute one task spec in the current process.

    This is the *single* execution path: the ``jobs=1`` in-process
    fallback and every pool worker call exactly this function, so
    serial/parallel parity is structural rather than tested-only.
    """
    return _resolve_runner(spec.runner)(spec)


# -- result (de)serialization -------------------------------------------------
#
# Cached results are stored as JSON.  A result dataclass round-trips
# through its field dict plus the dotted path of its class, resolved by
# import on decode — the cache layer stays ignorant of kernel-specific
# result types.


def encode_result(result: Any) -> Dict[str, Any]:
    """Encode a result dataclass as a JSON-safe dict."""
    return {
        "__dataclass__": f"{result.__class__.__module__}:{result.__class__.__qualname__}",
        "fields": asdict(result),
    }


def decode_result(doc: Dict[str, Any]) -> Any:
    """Reconstruct a result encoded by :func:`encode_result`."""
    module_name, sep, qualname = doc["__dataclass__"].partition(":")
    if not sep:
        raise ValueError(f"bad result type tag {doc['__dataclass__']!r}")
    cls: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        cls = getattr(cls, part)
    return cls(**doc["fields"])
