"""Deterministic multiprocess experiment engine.

The paper's evaluation is ~200 fully independent simulations (Algorithm
1 over thread counts 2..100 on two device configurations).  This
package fans such parameter sweeps across a worker pool and reassembles
the results bit-identically to serial execution, with a persistent
on-disk result cache underneath:

* :mod:`repro.parallel.tasks` — picklable task specs, fingerprints,
  cache keys, and the single task-execution function shared by the
  serial path and every worker;
* :mod:`repro.parallel.pool` — :class:`SweepExecutor`: chunked
  scheduling, ordered collection, ``jobs=1`` in-process fallback;
* :mod:`repro.parallel.cache` — :class:`SweepCache`: one JSON file per
  point, keyed by (config fingerprint, component fingerprint, kernel
  version tag, thread count, params), with hit/miss accounting;
* :mod:`repro.parallel.progress` — per-point completion callbacks.

The engine is kernel-agnostic: any future sweep (block-size,
latency-load, window-scaling) parallelizes by constructing its own
specs — see ``mutex_task_spec`` in
:mod:`repro.host.kernels.mutex_kernel` for the pattern.
"""

from repro.parallel.cache import CacheStats, SweepCache, default_cache_root
from repro.parallel.pool import SweepExecutor, resolve_jobs
from repro.parallel.progress import ProgressFn, ProgressPrinter, make_progress, null_progress
from repro.parallel.tasks import (
    TaskSpec,
    cache_key,
    component_fingerprint,
    config_fingerprint,
    decode_result,
    encode_result,
    run_task,
)

__all__ = [
    "CacheStats",
    "SweepCache",
    "default_cache_root",
    "SweepExecutor",
    "resolve_jobs",
    "ProgressFn",
    "ProgressPrinter",
    "make_progress",
    "null_progress",
    "TaskSpec",
    "cache_key",
    "component_fingerprint",
    "config_fingerprint",
    "decode_result",
    "encode_result",
    "run_task",
]
