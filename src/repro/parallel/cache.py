"""Persistent on-disk result cache for parameter sweeps.

Replaces the retired module-level ``_CACHE`` dict in
``repro.analysis.sweep``, which was unbounded, process-local, and
keyed coarsely enough that distinct pipelines could alias.  This cache
is

* **persistent** — one small JSON file per simulation point, so a
  second process (or a warm CI job) reuses earlier work;
* **precisely keyed** — entries are addressed by the task-spec cache
  key (config fingerprint + component fingerprint + kernel version
  tag + thread count + kernel params, see
  :func:`repro.parallel.tasks.cache_key`), so component overrides or
  a kernel-semantics bump can never serve stale results;
* **accounted** — hit/miss/store counters are kept per instance and
  reported by :meth:`SweepCache.stats`.

The cache root resolves, in order: an explicit ``root`` argument, the
``REPRO_CACHE_DIR`` environment variable, ``$XDG_CACHE_HOME`` or
``~/.cache`` under ``hmcsim-repro/sweepcache``.  ``--no-cache`` on the
CLI (or ``use_cache=False`` in the API) bypasses it entirely.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = ["CacheStats", "SweepCache", "default_cache_root"]

#: Bump to invalidate every existing cache entry (schema changes).
CACHE_SCHEMA = 1


def default_cache_root() -> Path:
    """The cache directory used when none is given explicitly."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "hmcsim-repro" / "sweepcache"


@dataclass
class CacheStats:
    """Hit/miss/store accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = self.misses = self.stores = 0


class SweepCache:
    """Directory of JSON result files, one per simulation point.

    Writes are atomic (temp file + ``os.replace``) so concurrent
    workers racing on the same key leave a whole file either way;
    unreadable or corrupt entries are treated as misses and
    overwritten on the next store.
    """

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        """The entry file backing ``key``."""
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or None on a miss."""
        path = self.path_for(key)
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        if doc.get("schema") != CACHE_SCHEMA or "payload" not in doc:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return doc["payload"]

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store ``payload`` under ``key`` (atomic replace)."""
        self.root.mkdir(parents=True, exist_ok=True)
        doc = {"schema": CACHE_SCHEMA, "key": key, "payload": payload}
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh)
            os.replace(tmp, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for entry in self.root.glob("*.json"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))
