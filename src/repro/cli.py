"""Command-line interface: run the paper's experiments from a shell.

Installed as ``hmcsim-repro`` (also ``python -m repro``):

* ``hmcsim-repro table 1|2|5|6`` — regenerate a paper table.
* ``hmcsim-repro sweep --threads 2:100 --plot --csv out.csv`` — run the
  Figures 5-7 sweep, render ASCII charts, export CSV.
* ``hmcsim-repro kernel mutex|ticket|...`` — run one workload kernel
  (resolved through the workload registry; ``info`` lists them all).
* ``hmcsim-repro trace record|replay|convert`` — capture a workload
  run as a versioned JSONL trace and replay it (see
  ``docs/WORKLOADS.md``).
* ``hmcsim-repro graph counter|pipeline|kvstore`` — run a task-graph
  workload.
* ``hmcsim-repro fuzz --seeds 64 --shrink`` — differential-fuzz the
  datapath against the functional oracle (see ``docs/CORRECTNESS.md``);
  ``--trace run.jsonl`` replays a recorded workload trace through the
  differential runner instead of generated traffic.
* ``hmcsim-repro info`` — show the command space and configurations.

Experiment commands accept ``--component seam=impl`` (repeatable) to
swap a pipeline stage, e.g. ``--component xbar=ideal --component
vault_scheduler=round_robin``.  ``info`` lists the registered
implementations per seam.

``sweep`` and ``kernel mutex`` additionally accept ``--fault
kind=param`` (repeatable) and ``--fault-seed N`` to run under a
deterministic fault plan, e.g. ``--fault xbar_drop=0.004 --fault
vault_stall=2e-3,duration=4``.  ``info`` lists the registered fault
kinds.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace as _replace
from typing import List, Optional, Sequence, Tuple

from repro.analysis import tables as _tables
from repro.analysis.export import sweep_to_csv, write_csv
from repro.analysis.plot import plot_sweeps
from repro.analysis.sweep import run_mutex_sweep
from repro.errors import ComponentError, FaultError
from repro.faults.plan import DEFAULT_FAULT_SEED, FaultPlan, FaultSpec
from repro.faults.registry import FAULTS
from repro.hmc.commands import CMC_CODES, DEFINED_CODES
from repro.hmc.components import COMPONENTS
from repro.hmc.composition import SEAM_FIELDS
from repro.hmc.config import HMCConfig
from repro.parallel.progress import make_progress
from repro.workloads.registry import WORKLOADS

__all__ = ["main", "build_parser"]


def _parse_threads(spec: str) -> List[int]:
    """Parse a thread-axis spec: "N", "lo:hi", or "lo:hi:step"."""
    parts = spec.split(":")
    try:
        nums = [int(p) for p in parts]
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad thread spec {spec!r}") from None
    if len(nums) == 1:
        return nums
    if len(nums) == 2:
        lo, hi = nums
        step = 1
    elif len(nums) == 3:
        lo, hi, step = nums
    else:
        raise argparse.ArgumentTypeError(f"bad thread spec {spec!r}")
    if lo < 1 or hi < lo or step < 1:
        raise argparse.ArgumentTypeError(f"bad thread range {spec!r}")
    counts = list(range(lo, hi + 1, step))
    if counts[-1] != hi:
        counts.append(hi)
    return counts


def _parse_component(spec: str) -> Tuple[str, str]:
    """Parse a ``--component`` spec: ``seam=impl``, e.g. ``xbar=ideal``."""
    seam, sep, key = spec.partition("=")
    if not sep or seam not in SEAM_FIELDS:
        known = ", ".join(sorted(SEAM_FIELDS))
        raise argparse.ArgumentTypeError(
            f"bad component spec {spec!r} (expected seam=impl; seams: {known})"
        )
    if not COMPONENTS.has(seam, key):
        known = ", ".join(COMPONENTS.keys(seam))
        raise argparse.ArgumentTypeError(
            f"unknown {seam} implementation {key!r} (registered: {known})"
        )
    return seam, key


def _configs(
    which: str, components: Optional[List[Tuple[str, str]]] = None
) -> List[HMCConfig]:
    cfgs = {
        "4link": [HMCConfig.cfg_4link_4gb()],
        "8link": [HMCConfig.cfg_8link_8gb()],
        "both": [HMCConfig.cfg_4link_4gb(), HMCConfig.cfg_8link_8gb()],
    }[which]
    if components:
        overrides = {SEAM_FIELDS[seam]: key for seam, key in components}
        cfgs = [_replace(cfg, **overrides) for cfg in cfgs]
    return cfgs


def _parse_fault(spec: str) -> FaultSpec:
    """Parse a ``--fault`` spec: ``kind=value[,name=value...]``."""
    try:
        return FaultSpec.parse(spec)
    except FaultError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _add_fault_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--fault", action="append", type=_parse_fault, default=None,
        metavar="KIND=PARAM", dest="faults",
        help="inject a deterministic fault, e.g. xbar_drop=0.004 or "
        "vault_stall=2e-3,duration=4 (repeatable; see 'info' for kinds)",
    )
    p.add_argument(
        "--fault-seed", type=lambda s: int(s, 0), default=DEFAULT_FAULT_SEED,
        metavar="N", help="seed every fault draw derives from "
        f"(default {DEFAULT_FAULT_SEED:#x}; same seed = same faults, "
        "serial or parallel)",
    )


def _fault_plan(args) -> Optional[FaultPlan]:
    """The FaultPlan described by the ``--fault``/``--fault-seed`` flags."""
    if not getattr(args, "faults", None):
        return None
    try:
        return FaultPlan(specs=tuple(args.faults), seed=args.fault_seed)
    except FaultError as exc:
        raise SystemExit(f"hmcsim-repro: error: {exc}")


def _add_component_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--component", action="append", type=_parse_component, default=None,
        metavar="SEAM=IMPL", dest="components",
        help="swap a pipeline stage, e.g. xbar=ideal (repeatable)",
    )
    p.add_argument(
        "--engine", choices=["scalar", "vector"], default=None,
        help="datapath engine: 'vector' is shorthand for "
        "--component xbar=vector (numpy flight-table batch engine, "
        "requires the [vector] extra); 'scalar' is the default object "
        "datapath",
    )


def _merge_engine(args) -> None:
    """Fold ``--engine vector`` into the ``--component`` override list.

    An explicit ``--component xbar=...`` wins over the convenience
    flag, so ``--engine vector --component xbar=ideal`` is an ideal
    crossbar, not a conflict.
    """
    if getattr(args, "engine", None) != "vector":
        return
    components = list(args.components or [])
    if not any(seam == "xbar" for seam, _key in components):
        components.append(("xbar", "vector"))
    args.components = components


def _add_jobs_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the sweep points (0 = all cores; "
        "results are bit-identical for any value)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent sweep result cache and recompute",
    )


def _sweep_kwargs(args) -> dict:
    """run_mutex_sweep keyword arguments from the jobs/cache/fault flags."""
    kwargs: dict = {"jobs": args.jobs, "use_cache": not args.no_cache}
    if args.jobs != 1:
        kwargs["progress"] = make_progress(sys.stderr)
    plan = _fault_plan(args)
    if plan is not None:
        kwargs["fault_plan"] = plan
    return kwargs


def _cli_kernel_names() -> List[str]:
    """Registry workloads the ``kernel`` subcommand offers."""
    return [
        name
        for name, cls in sorted(WORKLOADS.classes().items())
        if cls.kind == "kernel" and getattr(cls, "cli_kernel", False)
    ]


def _recordable_names() -> List[str]:
    """Registry workloads ``trace record`` can capture."""
    return [
        name for name, cls in sorted(WORKLOADS.classes().items())
        if cls.recordable
    ]


def _graph_scenarios() -> List[str]:
    """Task-graph scenarios, without their ``graph:`` prefix."""
    return [name.split(":", 1)[1] for name in WORKLOADS.keys(kind="graph")]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="hmcsim-repro",
        description="HMC-Sim 2.0 reproduction: regenerate the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table", help="regenerate a paper table")
    p_table.add_argument("number", choices=["1", "2", "5", "6"])
    p_table.add_argument(
        "--threads", type=_parse_threads, default=None,
        help="thread axis for table 6 (default 2:100)",
    )
    _add_component_arg(p_table)
    _add_jobs_args(p_table)

    p_sweep = sub.add_parser("sweep", help="run the Figures 5-7 thread sweep")
    p_sweep.add_argument(
        "--threads", type=_parse_threads, default=_parse_threads("2:100"),
        help="thread axis, e.g. 2:100 or 2:100:7 (default 2:100)",
    )
    p_sweep.add_argument(
        "--config", choices=["4link", "8link", "both"], default="both"
    )
    p_sweep.add_argument("--plot", action="store_true", help="render ASCII charts")
    p_sweep.add_argument("--csv", metavar="PATH", help="export the series as CSV")
    _add_component_arg(p_sweep)
    _add_jobs_args(p_sweep)
    _add_fault_args(p_sweep)

    p_kernel = sub.add_parser("kernel", help="run one workload kernel")
    p_kernel.add_argument("name", choices=_cli_kernel_names())
    p_kernel.add_argument("--threads", type=int, default=16)
    p_kernel.add_argument(
        "--config", choices=["4link", "8link"], default="4link"
    )
    p_kernel.add_argument(
        "--oracle-sample", type=int, default=None, metavar="N",
        dest="oracle_sample",
        help="shadow-execute roughly 1-in-N requests against the "
        "functional reference model and fail on any divergence "
        "(workloads that declare the 'oracle_sample' parameter; "
        "incompatible with --fault)",
    )
    _add_component_arg(p_kernel)
    _add_fault_args(p_kernel)

    p_trace = sub.add_parser(
        "trace", help="record or replay a workload trace"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_record = trace_sub.add_parser(
        "record",
        help="run a recordable workload, capturing its request stream",
    )
    p_record.add_argument("workload", choices=_recordable_names())
    p_record.add_argument("--threads", type=int, default=16)
    p_record.add_argument(
        "--config", choices=["4link", "8link"], default="4link"
    )
    p_record.add_argument(
        "-o", "--output", required=True, metavar="PATH",
        help="trace file to write (JSONL)",
    )
    p_replay = trace_sub.add_parser(
        "replay",
        help="replay a trace; closed-loop replay checks the recorded "
        "per-thread cycle baseline",
    )
    p_replay.add_argument("trace_file")
    p_replay.add_argument(
        "--mode", choices=["closed", "open"], default="closed",
        help="closed: per-thread semantic re-execution; open: "
        "rate-driven traffic replay (default closed)",
    )
    p_replay.add_argument(
        "--rate", type=float, default=4.0,
        help="open-loop offered rate in requests/cycle (default 4.0)",
    )
    p_replay.add_argument(
        "--depth", type=int, default=None, metavar="N",
        help="open-loop in-flight target: gate injection on N outstanding "
        "requests instead of --rate (deep-queue regime)",
    )
    p_replay.add_argument(
        "--config", choices=["4link", "8link"], default=None,
        help="override the trace header's configuration",
    )
    _add_component_arg(p_replay)
    p_convert = trace_sub.add_parser(
        "convert",
        help="convert rendered simulator Tracer output into a workload "
        "trace (lossy: open-loop replay only)",
    )
    p_convert.add_argument("trace_file")
    p_convert.add_argument(
        "-o", "--output", required=True, metavar="PATH",
        help="workload trace file to write (JSONL)",
    )

    p_graph = sub.add_parser("graph", help="run a task-graph workload")
    p_graph.add_argument("scenario", choices=_graph_scenarios())
    p_graph.add_argument(
        "--config", choices=["4link", "8link"], default="4link"
    )
    p_graph.add_argument(
        "--schedule", action="store_true",
        help="print the per-task (start, done) cycle schedule",
    )
    _add_component_arg(p_graph)

    p_open = sub.add_parser(
        "openloop", help="open-loop latency vs offered load"
    )
    p_open.add_argument("--rate", type=float, default=8.0, help="requests/cycle")
    p_open.add_argument("--duration", type=int, default=256)
    p_open.add_argument(
        "--depth", type=int, default=None, metavar="N",
        help="in-flight target: gate injection on N outstanding requests "
        "instead of --rate (which then only sizes the stream)",
    )
    p_open.add_argument("--pattern", choices=["uniform", "stride"], default="uniform")
    p_open.add_argument("--config", choices=["4link", "8link"], default="4link")
    _add_component_arg(p_open)

    p_chase = sub.add_parser("chase", help="pointer-chase latency kernel")
    p_chase.add_argument("--length", type=int, default=64)
    p_chase.add_argument("--scatter", action="store_true")
    p_chase.add_argument("--timing", action="store_true", help="attach DRAM timing")
    p_chase.add_argument("--config", choices=["4link", "8link"], default="4link")
    _add_component_arg(p_chase)

    p_analyze = sub.add_parser("analyze", help="analyze a trace file")
    p_analyze.add_argument("trace", help="path to a trace file")
    p_analyze.add_argument(
        "--histogram", action="store_true", help="print the latency histogram"
    )
    p_analyze.add_argument(
        "--fault-timeline", action="store_true",
        help="render the injected-fault timeline from FAULT trace events",
    )

    p_fuzz = sub.add_parser(
        "fuzz", help="differential-fuzz the datapath against the oracle"
    )
    p_fuzz.add_argument(
        "--seed", type=lambda s: int(s, 0), default=0, metavar="N",
        help="first seed (default 0)",
    )
    p_fuzz.add_argument(
        "--seeds", default="1", metavar="N|LO-HI",
        help="number of consecutive seeds starting at --seed, or an "
        "inclusive LO-HI seed range (default 1)",
    )
    p_fuzz.add_argument(
        "--farm", action="store_true",
        help="fan the seeds across the parallel sweep pool with "
        "fingerprint-cached per-seed results; divergent seeds are "
        "shrunk and written as fixtures under tests/oracle/repros/ "
        "(override with --emit-repro)",
    )
    p_fuzz.add_argument(
        "--count", type=int, default=256, metavar="N",
        help="requests per trace (default 256)",
    )
    p_fuzz.add_argument(
        "--profile", default="all",
        help="traffic profile, or 'all' to rotate "
        "mixed/cmc/spec/faulty/deep_queue by seed (default all); "
        "'trace' replays a recorded workload trace (requires --trace)",
    )
    p_fuzz.add_argument(
        "--trace", metavar="PATH", dest="trace_path", default=None,
        help="workload trace to replay through the differential runner "
        "(sets the profile to 'trace')",
    )
    p_fuzz.add_argument(
        "--config", choices=["4link_4gb", "8link_8gb"], default="4link_4gb"
    )
    p_fuzz.add_argument(
        "--shrink", action="store_true",
        help="delta-debug each failing trace to a minimal reproducer",
    )
    p_fuzz.add_argument(
        "--emit-repro", metavar="DIR", dest="emit_repro",
        help="write failing traces (shrunk, with --shrink) as JSON "
        "fixtures under DIR",
    )
    _add_component_arg(p_fuzz)
    _add_jobs_args(p_fuzz)

    p_verify = sub.add_parser(
        "verify", help="verify the paper's published numbers"
    )
    p_verify.add_argument(
        "--threads", type=_parse_threads, default=None,
        help="thread axis for the sweep anchors (default 2:100)",
    )
    _add_jobs_args(p_verify)

    p_serve = sub.add_parser(
        "serve", help="run the simulation service (warm sessions on a socket)"
    )
    p_serve.add_argument(
        "--socket", required=True, metavar="PATH",
        help="Unix socket path to listen on",
    )
    p_serve.add_argument(
        "--state-dir", required=True, metavar="DIR",
        help="session directories (journals, checkpoints, results); "
        "a restarted server resumes every session found here",
    )
    p_serve.add_argument(
        "--max-sessions", type=int, default=8, metavar="N",
        help="admission cap on concurrently live sessions (default 8)",
    )
    p_serve.add_argument(
        "--max-requests", type=int, default=256, metavar="N",
        help="per-session submission quota (default 256)",
    )
    p_serve.add_argument(
        "--queue-depth", type=int, default=16, metavar="N",
        help="bounded per-session queue; full = submits wait (default 16)",
    )
    p_serve.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="fence (drain+checkpoint) every N-th submission (default 1)",
    )
    p_serve.add_argument(
        "--sweep-jobs", type=int, default=1, metavar="N",
        help="worker processes for sweep submissions (0 = all cores)",
    )
    p_serve.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="sweep result cache root (default: the shared cache)",
    )

    p_client = sub.add_parser(
        "client", help="talk to a running simulation service"
    )
    p_client.add_argument(
        "--socket", required=True, metavar="PATH",
        help="Unix socket path of the server",
    )
    client_sub = p_client.add_subparsers(dest="client_command", required=True)
    p_csubmit = client_sub.add_parser(
        "submit", help="create-or-reuse a session and submit work"
    )
    p_csubmit.add_argument(
        "--session", default=None, metavar="NAME",
        help="session to submit to (created if it does not exist)",
    )
    p_csubmit.add_argument(
        "--config", choices=["4link_4gb", "8link_8gb"], default="4link_4gb",
        help="configuration for a newly created session",
    )
    p_csubmit.add_argument(
        "--kind", choices=["workload", "raw", "sweep"], default="workload",
        help="submission kind (default workload)",
    )
    p_csubmit.add_argument(
        "spec", help="submission spec as JSON, e.g. "
        '\'{"workload": "mutex", "params": {"threads": 8}}\'',
    )
    p_csubmit.add_argument(
        "--no-wait", action="store_true",
        help="return after the ack instead of waiting for the result",
    )
    _add_component_arg(p_csubmit)
    p_cattach = client_sub.add_parser(
        "attach", help="stream a session's results and telemetry"
    )
    p_cattach.add_argument("session", help="session name")
    p_cattach.add_argument(
        "--max-events", type=int, default=None, metavar="N",
        help="stop after N live stream messages (default: until EOF)",
    )
    p_cstat = client_sub.add_parser(
        "stat", help="show server or session telemetry"
    )
    p_cstat.add_argument("session", nargs="?", default=None)

    sub.add_parser("info", help="show command space and configurations")
    return parser


def _cmd_table(args, out) -> int:
    if args.number == "1":
        out.write(_tables.render_table1() + "\n")
    elif args.number == "2":
        out.write(_tables.render_table2() + "\n")
    elif args.number == "5":
        from repro.cmc_ops.mutex import load_mutex_ops
        from repro.hmc.sim import HMCSim

        sim = HMCSim(_configs("4link", args.components)[0])
        load_mutex_ops(sim)
        out.write(_tables.render_table5(sim.cmc) + "\n")
    else:
        counts = args.threads or _parse_threads("2:100")
        sweeps = [
            run_mutex_sweep(c, counts, **_sweep_kwargs(args))
            for c in _configs("both", args.components)
        ]
        out.write(_tables.render_table6(sweeps) + "\n")
    return 0


def _cmd_sweep(args, out) -> int:
    kwargs = _sweep_kwargs(args)
    sweeps = [
        run_mutex_sweep(c, args.threads, **kwargs)
        for c in _configs(args.config, args.components)
    ]
    plan = kwargs.get("fault_plan")
    if plan is not None:
        for sweep in sweeps:
            injected = sum(r.faults_injected for r in sweep.runs)
            retrans = sum(r.retransmits for r in sweep.runs)
            out.write(
                f"{sweep.config_name} fault plan [{plan.describe()}]: "
                f"{injected} faults injected, {retrans} retransmits\n"
            )
        out.write("\n")
    for title, attr in [
        ("Figure 5: Minimum Lock Cycles", "min_cycles"),
        ("Figure 6: Maximum Lock Cycles", "max_cycles"),
        ("Figure 7: Average Lock Cycles", "avg_cycles"),
    ]:
        if args.plot:
            out.write(plot_sweeps(title, sweeps, attr) + "\n\n")
        else:
            out.write(_tables.render_figure_series(title, sweeps, attr) + "\n\n")
    out.write(_tables.render_table6(sweeps) + "\n")
    if args.csv:
        path = write_csv(args.csv, sweep_to_csv(sweeps))
        out.write(f"series written to {path}\n")
    return 0


def _cmd_kernel(args, out) -> int:
    cfg = _configs(args.config, args.components)[0]
    plan = _fault_plan(args)
    frontend = WORKLOADS.get(args.name)
    if plan is not None and not frontend.supports_faults:
        raise SystemExit(
            f"hmcsim-repro: error: --fault is only supported by the mutex "
            f"kernel (got kernel {args.name!r})"
        )
    sample = getattr(args, "oracle_sample", None)
    if sample is not None and "oracle_sample" not in frontend.default_params():
        raise SystemExit(
            f"hmcsim-repro: error: --oracle-sample is not supported by "
            f"kernel {args.name!r}"
        )
    for variant in frontend.cli_variants(args.threads):
        if sample is not None:
            variant = dict(variant, oracle_sample=sample)
        s = frontend.run(cfg, variant, fault_plan=plan)
        out.write(frontend.format_stats(s, fault_plan=plan) + "\n")
    return 0


def _cmd_openloop(args, out) -> int:
    from repro.host.openloop import run_open_loop

    cfg = _configs(args.config, args.components)[0]
    s = run_open_loop(
        cfg,
        offered_rate=args.rate,
        duration=args.duration,
        pattern=args.pattern,
        depth=args.depth,
    )
    _write_openloop(s, out)
    return 0


def _cmd_chase(args, out) -> int:
    cfg = _configs(args.config, args.components)[0]
    frontend = WORKLOADS.get("chase")
    s = frontend.run(
        cfg,
        {"length": args.length, "scatter": args.scatter, "timing": args.timing},
    )
    out.write(frontend.format_stats(s) + "\n")
    return 0


def _write_openloop(s, out) -> None:
    if s.depth is not None:
        offered = f"depth {s.depth}"
        knee = "queue-gated"
    else:
        offered = f"offered {s.offered_rate}/cyc"
        knee = "SATURATED" if s.saturated else "below the knee"
    out.write(
        f"{s.config_name} open-loop {s.pattern}: {offered}, "
        f"achieved {s.achieved_rate:.2f}/cyc, mean latency "
        f"{s.mean_latency:.1f} cyc, p99 {s.p99_latency} cyc, {knee}\n"
    )


def _cmd_trace(args, out) -> int:
    from repro.workloads.tracefmt import WorkloadTrace, trace_from_tracer

    if args.trace_command == "record":
        from repro.workloads.replay import record_workload

        cfg = _configs(args.config)[0]
        frontend = WORKLOADS.get(args.workload)
        stats, trace = record_workload(
            args.workload, cfg, {"threads": args.threads}
        )
        path = trace.dump(args.output)
        out.write(frontend.format_stats(stats) + "\n")
        out.write(
            f"recorded {len(trace.requests)} request(s) from "
            f"{len(trace.threads)} thread(s) to {path} "
            f"(digest {trace.digest()})\n"
        )
        return 0

    if args.trace_command == "convert":
        from pathlib import Path

        source = Path(args.trace_file)
        if not source.exists():
            out.write(f"trace file {source} does not exist\n")
            return 1
        trace, skipped = trace_from_tracer(source.read_text())
        path = trace.dump(args.output)
        out.write(
            f"converted {len(trace.requests)} request(s) to {path}"
            + (f" ({skipped} unresolvable event(s) skipped)" if skipped else "")
            + "\n"
        )
        return 0

    # replay
    from repro.workloads.replay import replay_open_loop, replay_trace

    trace = WorkloadTrace.load(args.trace_file)
    cfg = None
    if args.config or args.components:
        base = args.config or (
            "8link" if trace.config_name == "8link_8gb" else "4link"
        )
        cfg = _configs(base, args.components)[0]
    if args.mode == "open":
        s = replay_open_loop(trace, config=cfg, rate=args.rate, depth=args.depth)
        _write_openloop(s, out)
        return 0
    rs = replay_trace(trace, config=cfg)
    r = rs.result
    out.write(
        f"{rs.config_name} trace replay"
        + (f" [{rs.workload}]" if rs.workload else "")
        + f": {len(r.threads)} thread(s), {r.total_cycles} cycles, "
        f"min={r.min_cycle} max={r.max_cycle} avg={r.avg_cycle:.2f}\n"
    )
    match = rs.matches_baseline
    if match is None:
        out.write("no baseline in the trace header; nothing to check\n")
        return 0
    if match:
        out.write("baseline: per-thread cycles match the recording\n")
        return 0
    out.write("baseline MISMATCH:\n")
    for line in rs.mismatches():
        out.write(f"  {line}\n")
    return 1


def _cmd_graph(args, out) -> int:
    cfg = _configs(args.config, args.components)[0]
    frontend = WORKLOADS.get(f"graph:{args.scenario}")
    s = frontend.run(cfg, {})
    out.write(
        f"{s.config_name} graph:{args.scenario}: {s.tasks} task(s) on "
        f"{s.threads} thread(s), {s.total_cycles} cycles, "
        f"verified={s.verified}\n"
    )
    if args.schedule:
        for name, (start, done) in sorted(
            s.schedule.items(), key=lambda kv: (kv[1], kv[0])
        ):
            out.write(f"  {name}: cycles {start}..{done}\n")
    return 0 if s.verified else 1


def _cmd_analyze(args, out) -> int:
    from pathlib import Path

    from repro.analysis.traceview import analyze_trace

    path = Path(args.trace)
    if not path.exists():
        out.write(f"trace file {path} does not exist\n")
        return 1
    a = analyze_trace(path.read_text())
    out.write(a.summary() + "\n")
    if args.histogram and a.latencies:
        out.write("latency histogram (4-cycle buckets):\n")
        for bucket, count in a.latency_histogram().items():
            out.write(f"  {bucket:>8}: {count}\n")
    if args.fault_timeline:
        out.write("fault timeline (64-cycle windows):\n")
        out.write(a.render_fault_timeline() + "\n")
    return 0


def _cmd_info(out) -> int:
    out.write("HMC-Sim 2.0 reproduction\n")
    out.write(
        f"command space: {len(DEFINED_CODES)} specification commands, "
        f"{len(CMC_CODES)} CMC-eligible codes\n"
    )
    for cfg in _configs("both"):
        out.write(
            f"{cfg.describe()}: {cfg.num_vaults} vaults x {cfg.num_banks} banks, "
            f"queue depth {cfg.queue_depth}, xbar depth {cfg.xbar_depth}, "
            f"block {cfg.bsize}B\n"
        )
    out.write(f"CMC codes: {', '.join(str(c) for c in CMC_CODES[:12])}, ...\n")
    defaults = HMCConfig.cfg_4link_4gb().component_selection()
    out.write("pipeline components (--component seam=impl, * = default):\n")
    for seam in COMPONENTS.seams():
        keys = ", ".join(
            f"{k}*" if k == defaults[seam] else k for k in COMPONENTS.keys(seam)
        )
        out.write(f"  {seam}: {keys}\n")
    out.write("fault kinds (--fault kind=param, primary param shown):\n")
    for key, primary, doc in FAULTS.describe():
        out.write(f"  {key} ({primary}): {doc}\n")
    out.write("workloads (run via kernel/chase/trace/graph subcommands):\n")
    for name, kind, desc in WORKLOADS.describe():
        out.write(f"  {name} [{kind}]: {desc}\n")
    return 0


#: ``fuzz --profile all`` rotation: every 5 consecutive seeds cover the
#: full command mix, CMC-heavy traffic, the spec-only mix, a run under
#: an oracle-exact fault plan, and the deep-queue burst shape.
_FUZZ_ROTATION = ("mixed", "cmc", "spec", "faulty", "deep_queue")


def _parse_seed_list(args) -> List[int]:
    """``--seeds`` as a seed list: a count (from ``--seed``) or LO-HI."""
    spec = str(args.seeds)
    if "-" in spec.lstrip("-"):
        lo_s, _, hi_s = spec.lstrip("-").partition("-")
        try:
            lo, hi = int(lo_s, 0), int(hi_s, 0)
        except ValueError:
            raise SystemExit(
                f"hmcsim-repro: error: bad --seeds range {spec!r} "
                f"(expected LO-HI)"
            )
        if hi < lo:
            raise SystemExit(
                f"hmcsim-repro: error: empty --seeds range {spec!r}"
            )
        return list(range(lo, hi + 1))
    try:
        n = int(spec, 0)
    except ValueError:
        raise SystemExit(
            f"hmcsim-repro: error: bad --seeds value {spec!r} "
            f"(expected a count or LO-HI)"
        )
    if n < 1:
        raise SystemExit("hmcsim-repro: error: --seeds must be >= 1")
    return list(range(args.seed, args.seed + n))


def _cmd_fuzz(args, out) -> int:
    from pathlib import Path

    from repro.oracle import (
        PROFILES,
        emit_repro,
        farm_task_spec,
        format_seed_line,
        generate_trace,
        result_from_diff,
        run_farm,
        run_trace,
        shrink_trace,
    )

    if args.trace_path is None and args.profile == "trace":
        raise SystemExit(
            "hmcsim-repro: error: the 'trace' profile replays a recorded "
            "workload trace; pass one with --trace PATH"
        )
    if (
        args.trace_path is None
        and args.profile != "all"
        and args.profile not in PROFILES
    ):
        raise SystemExit(
            f"hmcsim-repro: error: unknown profile {args.profile!r} "
            f"(have: all, trace, {', '.join(sorted(PROFILES))})"
        )
    wtrace = None
    if args.trace_path is not None:
        from repro.workloads.tracefmt import WorkloadTrace

        wtrace = WorkloadTrace.load(args.trace_path)
    seeds = _parse_seed_list(args)
    overrides = (
        {SEAM_FIELDS[seam]: key for seam, key in args.components}
        if args.components else None
    )

    def profile_for(seed: int) -> str:
        return (
            _FUZZ_ROTATION[seed % len(_FUZZ_ROTATION)]
            if args.profile == "all" else args.profile
        )

    def runner(t):
        return run_trace(t, config_overrides=overrides)

    if args.farm:
        if wtrace is not None:
            raise SystemExit(
                "hmcsim-repro: error: --farm generates its own traces; "
                "it cannot replay --trace"
            )
        specs = [
            farm_task_spec(
                seed,
                profile=profile_for(seed),
                count=args.count,
                config_name=args.config,
                overrides=overrides,
            )
            for seed in seeds
        ]
        progress = make_progress(sys.stderr) if args.jobs != 1 else None
        results = run_farm(
            specs, jobs=args.jobs, use_cache=not args.no_cache,
            progress=progress,
        )
        # The self-growing corpus: divergent seeds are shrunk and land
        # in the regression-fixture directory by default.
        repro_dir = Path(args.emit_repro or "tests/oracle/repros")
        failures = skips = 0
        for seed, r in zip(seeds, results):
            out.write(format_seed_line(r) + "\n")
            if r.skipped is not None:
                skips += 1
                continue
            if r.ok:
                continue
            failures += 1
            for m in r.mismatches:
                out.write(m + "\n")
            trace = generate_trace(
                seed, profile=r.profile, count=args.count,
                config_name=args.config,
            )
            shrunk = shrink_trace(trace, runner=runner)
            repro_dir.mkdir(parents=True, exist_ok=True)
            path = emit_repro(
                shrunk, repro_dir / f"repro_seed{seed}_{r.profile}.json"
            )
            out.write(
                f"  shrunk to {len(shrunk.requests)} request(s); "
                f"fixture written to {path}\n"
            )
        if failures:
            out.write(f"FAIL: {failures}/{len(seeds)} seed(s) diverged\n")
            return 1
        tail = f", {skips} skipped" if skips else ""
        out.write(f"OK: {len(seeds)} seed(s), no divergence{tail}\n")
        return 0

    failures = skips = 0
    for seed in seeds:
        if wtrace is not None:
            from repro.oracle.workload_traces import trace_from_workload

            profile = "trace"
            trace = trace_from_workload(wtrace, seed=seed)
        else:
            profile = profile_for(seed)
            trace = generate_trace(
                seed, profile=profile, count=args.count, config_name=args.config
            )
        result = run_trace(trace, config_overrides=overrides)
        out.write(format_seed_line(result_from_diff(result)) + "\n")
        if result.skipped is not None:
            skips += 1
            continue
        if result.ok:
            continue
        failures += 1
        for m in result.mismatches:
            out.write(m.describe() + "\n")
        if args.shrink:
            trace = shrink_trace(trace, runner=runner)
            out.write(
                f"  shrunk to {len(trace.requests)} request(s), "
                f"{len(trace.preloads)} preload(s):\n"
            )
            for req in trace.requests:
                out.write(f"    {req.describe()}\n")
        if args.emit_repro:
            directory = Path(args.emit_repro)
            directory.mkdir(parents=True, exist_ok=True)
            path = emit_repro(
                trace, directory / f"repro_seed{seed}_{profile}.json"
            )
            out.write(f"  fixture written to {path}\n")
    if failures:
        out.write(f"FAIL: {failures}/{len(seeds)} seed(s) diverged\n")
        return 1
    tail = f", {skips} skipped" if skips else ""
    out.write(f"OK: {len(seeds)} seed(s), no divergence{tail}\n")
    return 0


def _cmd_serve(args, out) -> int:
    import asyncio

    from repro.serve.server import ServeConfig, SimServer

    server = SimServer(
        ServeConfig(
            socket_path=args.socket,
            state_dir=args.state_dir,
            max_sessions=args.max_sessions,
            max_requests_per_session=args.max_requests,
            queue_depth=args.queue_depth,
            checkpoint_every=args.checkpoint_every,
            sweep_jobs=args.sweep_jobs,
            cache_root=args.cache_dir,
        )
    )
    out.write(f"serving on {args.socket} (state in {args.state_dir})\n")
    out.flush()
    asyncio.run(server.run())
    out.write("drained; all live sessions checkpointed\n")
    return 0


def _client_submit(client, args, out) -> int:
    from repro.errors import ServeError
    from repro.serve import schemas

    spec = json.loads(args.spec)
    session = args.session
    if session is not None:
        try:
            client.stat(session)
        except ServeError as exc:
            if exc.code != "unknown_session":
                raise
            session = None
    if session is None:
        components = dict(args.components or [])
        session = client.create(
            args.config,
            components=components or None,
            session=args.session,
        )
    reply = client.submit(session, args.kind, spec, wait=not args.no_wait)
    if args.no_wait:
        out.write(
            f"session {session} submission {reply['submission']} queued\n"
        )
        return 0
    out.write(
        schemas.canonical_json(
            {
                "session": session,
                "submission": reply["submission"],
                "status": reply["status"],
                "payload": reply.get("payload"),
                "error": reply.get("error"),
            }
        )
        + "\n"
    )
    return 0 if reply["status"] == "done" else 1


def _client_attach(client, args, out) -> int:
    from repro.serve import schemas

    reply = client.attach(args.session, replay=True)
    out.write(schemas.canonical_json(reply["snapshot"]) + "\n")
    for msg in reply.get("history", []):
        out.write(schemas.canonical_json(msg) + "\n")
    try:
        for msg in client.events(max_events=args.max_events):
            out.write(schemas.canonical_json(msg) + "\n")
            out.flush()
    except Exception:
        # Server drained or the socket timed out: the stream is over.
        pass
    return 0


def _cmd_client(args, out) -> int:
    from repro.errors import ServeError
    from repro.serve import schemas
    from repro.serve.client import ServeClient

    try:
        with ServeClient(args.socket) as client:
            if args.client_command == "submit":
                return _client_submit(client, args, out)
            if args.client_command == "attach":
                return _client_attach(client, args, out)
            reply = client.stat(args.session)
            doc = {k: v for k, v in reply.items() if k not in ("type", "id")}
            out.write(schemas.canonical_json(doc) + "\n")
            return 0
    except ServeError as exc:
        # Structured refusal: machine code first so scripts can match it.
        out.write(f"error {exc.code}: {exc}\n")
        return 1


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    _merge_engine(args)
    try:
        return _dispatch(args, out)
    except ComponentError as exc:
        # Optional-dependency degradation: a component whose factory
        # cannot run (e.g. xbar='vector' without numpy) fails with one
        # clear line, not a traceback.
        sys.stderr.write(f"hmcsim-repro: error: {exc}\n")
        return 2


def _dispatch(args, out) -> int:
    if args.command == "table":
        return _cmd_table(args, out)
    if args.command == "sweep":
        return _cmd_sweep(args, out)
    if args.command == "kernel":
        return _cmd_kernel(args, out)
    if args.command == "openloop":
        return _cmd_openloop(args, out)
    if args.command == "chase":
        return _cmd_chase(args, out)
    if args.command == "trace":
        return _cmd_trace(args, out)
    if args.command == "graph":
        return _cmd_graph(args, out)
    if args.command == "analyze":
        return _cmd_analyze(args, out)
    if args.command == "fuzz":
        return _cmd_fuzz(args, out)
    if args.command == "serve":
        return _cmd_serve(args, out)
    if args.command == "client":
        return _cmd_client(args, out)
    if args.command == "verify":
        from repro.analysis.verify import render_verification_report, verify_all

        anchors = verify_all(
            thread_counts=args.threads,
            jobs=args.jobs,
            use_cache=not args.no_cache,
        )
        out.write(render_verification_report(anchors) + "\n")
        return 0 if all(a.passed for a in anchors) else 1
    return _cmd_info(out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
