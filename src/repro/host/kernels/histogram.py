"""Shared-counter histogram: atomic ``INC8`` vs host read-modify-write.

The paper's §III motivates the Gen2 atomics with the shared-counter
example behind Table II: an atomic increment done cache-side costs a
full read-modify-write of a 64-byte line, while the HMC ``INC8``
command costs one request FLIT and one response FLIT.  This kernel
turns that argument into a live workload: many threads bin a data
stream into a histogram of shared counters using either

* **atomic** mode — one ``INC8`` per sample (or posted ``P_INC8``), or
* **rmw** mode — RD16 + host increment + WR16 per sample (the
  cache-style protocol; exact only without concurrent binning of the
  same bucket, which is precisely the hazard atomics remove).

The FLIT counts reported per sample reproduce the Table II ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.hmc.config import HMCConfig
from repro.hmc.sim import HMCSim
from repro.host.engine import HostEngine
from repro.host.thread import Program, ThreadCtx

__all__ = ["run_histogram", "HistogramStats"]


def _hist_program(
    ctx: ThreadCtx, bins_base: int, samples: Sequence[int], mode: str
) -> Program:
    for bucket in samples:
        addr = bins_base + bucket * 16
        if mode == "atomic":
            yield ctx.inc8(addr)
        elif mode == "posted":
            yield ctx.inc8(addr, posted=True)
        else:  # rmw
            rsp = yield ctx.read(addr, 16)
            count = int.from_bytes(rsp.data[:8], "little") + 1
            yield ctx.write(addr, count.to_bytes(8, "little") + rsp.data[8:])


@dataclass(frozen=True)
class HistogramStats:
    """Result of one histogram run."""

    config_name: str
    mode: str
    threads: int
    samples: int
    bins: int
    cycles: int
    requests: int
    #: FLITs moved across the links (request + response).
    flits: int
    flits_per_sample: float
    #: True when every bin count matches the reference exactly.
    exact: bool
    #: Total increments lost to read-modify-write races (0 in atomic mode).
    lost_updates: int


def run_histogram(
    config: HMCConfig,
    *,
    num_threads: int = 16,
    samples_per_thread: int = 32,
    num_bins: int = 16,
    mode: str = "atomic",
    seed: int = 99,
    max_cycles: int = 2_000_000,
) -> HistogramStats:
    """Bin a deterministic sample stream; verify counts against reference.

    Args:
        mode: "atomic" (INC8), "posted" (P_INC8), or "rmw"
            (RD16 + WR16 host-side increment).
    """
    if mode not in ("atomic", "posted", "rmw"):
        raise ValueError(f"unknown histogram mode {mode!r}")
    sim = HMCSim(config)
    bins_base = 1 << 20
    # Deterministic skewed sample stream (low bins hotter).
    state = seed & 0xFFFFFFFFFFFFFFFF
    samples: List[int] = []
    for _ in range(num_threads * samples_per_thread):
        state = (state * 2862933555777941757 + 3037000493) & 0xFFFFFFFFFFFFFFFF
        samples.append(int(((state >> 11) / (1 << 53)) ** 2 * num_bins))

    engine = HostEngine(sim, max_cycles=max_cycles)
    for t in range(num_threads):
        chunk = samples[t * samples_per_thread : (t + 1) * samples_per_thread]
        engine.add_thread(
            lambda ctx, chunk=chunk: _hist_program(ctx, bins_base, chunk, mode)
        )
    result = engine.run()
    if mode == "posted":
        # Posted increments may still be in flight when programs finish.
        sim.drain()

    ref = [0] * num_bins
    for s in samples:
        ref[s] += 1
    lost = 0
    for b in range(num_bins):
        got = int.from_bytes(sim.mem_read(bins_base + b * 16, 8), "little")
        lost += ref[b] - got

    flits = sum(
        link.flits_in + link.flits_out for d in sim.devices for link in d.links
    )
    n = len(samples)
    return HistogramStats(
        config_name=config.describe(),
        mode=mode,
        threads=num_threads,
        samples=n,
        bins=num_bins,
        cycles=result.total_cycles,
        requests=sum(t.requests for t in result.threads),
        flits=flits,
        flits_per_sample=flits / n,
        exact=lost == 0,
        lost_updates=lost,
    )
