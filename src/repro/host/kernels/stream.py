"""STREAM Triad kernel (stride-1 bandwidth; HMC-Sim 1.0 evaluation, §II).

The HMC-Sim prior work executed a STREAM Triad kernel — ``a[i] = b[i]
+ q * c[i]`` — against varying device configurations to expose the
behaviour of stride-1 access.  Each simulated thread owns a contiguous
slice of the arrays and, per element block, issues two reads (``b``,
``c``) and one write (``a``); the floating-point work happens host-side
(the HMC is a memory, not a FLOP engine), so the measured quantity is
pure memory-system throughput: bytes moved per device cycle.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.hmc.config import HMCConfig
from repro.hmc.sim import HMCSim
from repro.host.engine import HostEngine
from repro.host.thread import Program, ThreadCtx

__all__ = [
    "stream_triad_program",
    "windowed_triad_program",
    "run_stream_triad",
    "StreamStats",
]

#: Doubles per 64-byte HMC block.
_DOUBLES_PER_BLOCK = 8


def stream_triad_program(
    ctx: ThreadCtx,
    a_base: int,
    b_base: int,
    c_base: int,
    start_block: int,
    num_blocks: int,
    q: float,
    block_bytes: int = 64,
) -> Program:
    """Triad over ``num_blocks`` consecutive ``block_bytes`` blocks."""
    n = block_bytes // 8
    for blk in range(start_block, start_block + num_blocks):
        off = blk * block_bytes
        rsp_b = yield ctx.read(b_base + off, block_bytes)
        rsp_c = yield ctx.read(c_base + off, block_bytes)
        b_vals = struct.unpack(f"<{n}d", rsp_b.data)
        c_vals = struct.unpack(f"<{n}d", rsp_c.data)
        a_vals = tuple(bv + q * cv for bv, cv in zip(b_vals, c_vals))
        yield ctx.write(a_base + off, struct.pack(f"<{n}d", *a_vals))


@dataclass(frozen=True)
class StreamStats:
    """Result of one Triad run."""

    config_name: str
    threads: int
    elements: int
    cycles: int
    bytes_moved: int
    #: Memory-system throughput in bytes per device cycle.
    bytes_per_cycle: float
    #: Verification outcome: max absolute error vs the host reference.
    max_abs_error: float


def windowed_triad_program(
    ctx,
    a_base: int,
    b_base: int,
    c_base: int,
    start_block: int,
    num_blocks: int,
    q: float,
    block_bytes: int,
):
    """Triad with batched issue: both input reads of a block in flight
    together (for :class:`repro.host.window.WindowedEngine`)."""
    n = block_bytes // 8
    for blk in range(start_block, start_block + num_blocks):
        off = blk * block_bytes
        rsp_b, rsp_c = yield [
            ctx.read(b_base + off, block_bytes),
            ctx.read(c_base + off, block_bytes),
        ]
        b_vals = struct.unpack(f"<{n}d", rsp_b.data)
        c_vals = struct.unpack(f"<{n}d", rsp_c.data)
        a_vals = tuple(bv + q * cv for bv, cv in zip(b_vals, c_vals))
        yield [ctx.write(a_base + off, struct.pack(f"<{n}d", *a_vals))]


def run_stream_triad(
    config: HMCConfig,
    *,
    num_threads: int = 16,
    blocks_per_thread: int = 8,
    q: float = 3.0,
    block_bytes: int = 64,
    windowed: bool = False,
    max_cycles: int = 1_000_000,
) -> StreamStats:
    """Run STREAM Triad and verify the result against a host reference.

    Array placement: three disjoint regions starting at 1 MiB spacing,
    so stride-1 traffic sweeps vaults/banks the way the interleave
    intends.  With ``windowed=True`` each thread keeps both input
    reads of a block in flight concurrently (memory-level parallelism
    inside the kernel).
    """
    sim = HMCSim(config)
    total_blocks = num_threads * blocks_per_thread
    n = total_blocks * (block_bytes // 8)
    a_base, b_base, c_base = 1 << 20, 2 << 20, 3 << 20

    b_vals = [float(i % 97) for i in range(n)]
    c_vals = [float((i * 7) % 31) for i in range(n)]
    sim.mem_write(b_base, struct.pack(f"<{n}d", *b_vals))
    sim.mem_write(c_base, struct.pack(f"<{n}d", *c_vals))

    if windowed:
        from repro.host.window import WindowedEngine

        engine = WindowedEngine(sim, window=2, max_cycles=max_cycles)
    else:
        engine = HostEngine(sim, max_cycles=max_cycles)
    program = windowed_triad_program if windowed else stream_triad_program
    for t in range(num_threads):
        engine.add_thread(
            lambda ctx, t=t: program(
                ctx, a_base, b_base, c_base, t * blocks_per_thread,
                blocks_per_thread, q, block_bytes,
            )
        )
    result = engine.run()

    got = struct.unpack(f"<{n}d", sim.mem_read(a_base, n * 8))
    err = max(abs(g - (bv + q * cv)) for g, bv, cv in zip(got, b_vals, c_vals))
    bytes_moved = total_blocks * block_bytes * 3
    return StreamStats(
        config_name=config.describe(),
        threads=num_threads,
        elements=n,
        cycles=result.total_cycles,
        bytes_moved=bytes_moved,
        bytes_per_cycle=bytes_moved / result.total_cycles,
        max_abs_error=err,
    )
