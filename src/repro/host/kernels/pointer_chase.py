"""Pointer-chase kernel: pure latency measurement.

Streaming kernels hide latency behind parallelism; a pointer chase
cannot — every load depends on the previous one, so the traversal rate
*is* the round-trip latency.  The chain is laid out by the host
(optionally scattered across vaults), then a thread follows ``next``
pointers with dependent RD16s.  With the baseline model every hop
costs exactly the 3-cycle round trip; with the DRAM timing extension
attached the row-buffer behaviour of the layout becomes visible
(sequential layout enjoys row hits, scattered layout does not).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.hmc.config import HMCConfig
from repro.hmc.sim import HMCSim
from repro.hmc.timing import HMCTimingModel
from repro.host.engine import HostEngine
from repro.host.thread import Program, ThreadCtx

__all__ = ["build_chain", "run_pointer_chase", "PointerChaseStats"]

#: Node: [next u64][payload u64] in one 16-byte block.
NODE_BYTES = 16

_LCG_MUL = 2862933555777941757
_LCG_ADD = 3037000493
_M64 = (1 << 64) - 1


def build_chain(
    sim: HMCSim, base: int, length: int, *, scatter: bool = False, seed: int = 7
) -> int:
    """Lay out a ``length``-node chain starting at ``base``.

    Sequential layout places node i at ``base + i*16``; scattered
    layout permutes the node order deterministically so consecutive
    hops land in different rows/vaults.  Returns the head address.
    """
    order = list(range(length))
    if scatter:
        state = seed & _M64
        for i in range(length - 1, 0, -1):
            state = (state * _LCG_MUL + _LCG_ADD) & _M64
            j = state % (i + 1)
            order[i], order[j] = order[j], order[i]
    addr_of = [base + slot * NODE_BYTES for slot in order]
    for i in range(length):
        nxt = addr_of[i + 1] if i + 1 < length else 0
        sim.mem_write(
            addr_of[i],
            nxt.to_bytes(8, "little") + i.to_bytes(8, "little"),
        )
    return addr_of[0]


def chase_program(ctx: ThreadCtx, head: int, visited: List[int]) -> Program:
    """Follow ``next`` pointers until the null terminator."""
    addr = head
    while addr:
        rsp = yield ctx.read(addr, 16)
        visited.append(int.from_bytes(rsp.data[8:16], "little"))
        addr = int.from_bytes(rsp.data[:8], "little")


@dataclass(frozen=True)
class PointerChaseStats:
    """One traversal measurement."""

    config_name: str
    length: int
    scattered: bool
    timed: bool
    cycles: int
    cycles_per_hop: float
    order_correct: bool


def run_pointer_chase(
    config: HMCConfig,
    *,
    length: int = 64,
    scatter: bool = False,
    timing: Optional[HMCTimingModel] = None,
    base: int = 1 << 20,
    max_cycles: int = 1_000_000,
) -> PointerChaseStats:
    """Build a chain, traverse it, and report cycles per hop."""
    sim = HMCSim(config, timing=timing)
    head = build_chain(sim, base, length, scatter=scatter)
    visited: List[int] = []
    engine = HostEngine(sim, max_cycles=max_cycles)
    engine.add_thread(lambda ctx: chase_program(ctx, head, visited))
    result = engine.run()
    return PointerChaseStats(
        config_name=config.describe(),
        length=length,
        scattered=scatter,
        timed=timing is not None,
        cycles=result.total_cycles,
        cycles_per_hop=result.total_cycles / length,
        order_correct=visited == list(range(length)),
    )
