"""The paper's CMC mutex workload — Algorithm 1 (§V.B).

Every thread executes, against a *single shared lock structure*::

    HMC_LOCK(ADDR)
    if LOCK_SUCCESS then
        HMC_UNLOCK(ADDR)
    else
        HMC_TRYLOCK(ADDR)
        while LOCK_FAILED do
            HMC_TRYLOCK(ADDR)
        end while
        HMC_UNLOCK(ADDR)
    end if

``hmc_trylock`` responses carry the thread id of the current lock
holder; LOCK_FAILED means "the returned owner id is not mine" (§V.A).
Using one lock address for every thread "will undoubtedly induce a
memory hot spot once the degree of parallelism reaches a sufficient
level" — deliberately, since the experiment measures the scalability
of the HMC queueing structures.

:func:`run_mutex_workload` reproduces one data point of Figures 5-7 /
Table VI: it builds the configuration, loads the three CMC ops,
initializes the lock, runs N threads, and reports MIN/MAX/AVG cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cmc_ops.mutex import decode_lock_response, init_lock, load_mutex_ops
from repro.faults.plan import FaultPlan
from repro.faults.watchdog import TagWatchdog
from repro.hmc.config import HMCConfig
from repro.hmc.sim import HMCSim
from repro.host.engine import EngineResult, HostEngine
from repro.host.thread import Program, ThreadCtx
from repro.parallel.tasks import TaskSpec

__all__ = [
    "mutex_program",
    "run_mutex_workload",
    "MutexRunStats",
    "DEFAULT_LOCK_ADDR",
    "KERNEL_VERSION",
    "mutex_task_spec",
    "run_task_spec",
]

#: Lock placement used by the reproduction runs: one 16-byte block,
#: vault 0 / bank 0 (any single address reproduces the hot spot).
DEFAULT_LOCK_ADDR = 0x0

#: Cycle-semantics tag of this kernel, part of every sweep-cache key.
#: Bump whenever a change alters the simulated results of Algorithm 1
#: (engine-parity golden regeneration is the usual trigger), so stale
#: cached points can never be served as current ones.
KERNEL_VERSION = "mutex-1"

#: Deadlock guard used by the paper sweeps.
DEFAULT_MAX_CYCLES = 1_000_000

#: Watchdog deadline for faulty runs: generous enough that only a
#: genuinely lost response (not hot-spot contention) times out.
FAULT_WATCHDOG_TIMEOUT = 4096


def mutex_program(ctx: ThreadCtx, lock_addr: int = DEFAULT_LOCK_ADDR) -> Program:
    """Algorithm 1 as a thread program."""
    rsp = yield ctx.lock(lock_addr)
    if decode_lock_response(rsp.data) == 1:
        yield ctx.unlock(lock_addr)
        return
    while True:
        rsp = yield ctx.trylock(lock_addr)
        if decode_lock_response(rsp.data) == ctx.tid_value:
            break
    yield ctx.unlock(lock_addr)


@dataclass(frozen=True)
class MutexRunStats:
    """One data point of the paper's sweep."""

    config_name: str
    threads: int
    min_cycle: int
    max_cycle: int
    avg_cycle: float
    total_cycles: int
    send_stalls: int
    cmc_executions: int
    #: Fault occurrences during the run (0 without a fault plan).
    faults_injected: int = 0
    #: Watchdog retransmissions (0 without a fault plan).
    retransmits: int = 0
    #: Online-oracle shadow comparisons (0 when sampling is off).
    oracle_checks: int = 0


def run_mutex_workload(
    config: HMCConfig,
    num_threads: int,
    *,
    lock_addr: int = DEFAULT_LOCK_ADDR,
    sim: Optional[HMCSim] = None,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    fault_plan: Optional[FaultPlan] = None,
    recorder: Optional[object] = None,
    oracle_sample: Optional[int] = None,
) -> MutexRunStats:
    """Run Algorithm 1 with ``num_threads`` threads on ``config``.

    Args:
        config: device configuration (the paper sweeps 4Link-4GB and
            8Link-8GB with queue_depth=64, xbar_depth=128, bsize=64).
        num_threads: the paper varies 2..100.
        lock_addr: the shared lock structure's address.
        sim: reuse an existing context (must already have the mutex
            ops loaded); a fresh one is created when omitted.
        max_cycles: deadlock guard.
        fault_plan: optional fault plan to attach; a faulty run gets a
            per-tag watchdog (dropped responses are retransmitted
            instead of deadlocking the sweep).
        recorder: optional trace recorder hung off the engine (see
            :class:`repro.workloads.replay.TraceRecorder`).
        oracle_sample: when set to ``N``, the engine shadow-executes
            roughly one in ``N`` requests against the functional
            reference and raises
            :class:`~repro.errors.OracleDivergenceError` on
            disagreement.  Incompatible with ``fault_plan``.

    Returns:
        The MIN/MAX/AVG cycle statistics of §V.B.
    """
    if num_threads < 1:
        raise ValueError("num_threads must be >= 1")
    if sim is None:
        sim = HMCSim(config)
        load_mutex_ops(sim)
    if fault_plan is not None and sim.faults is None:
        sim.attach_faults(fault_plan)
    init_lock(sim, lock_addr)
    watchdog = (
        TagWatchdog(timeout=FAULT_WATCHDOG_TIMEOUT) if sim.faults is not None else None
    )
    engine = HostEngine(
        sim,
        max_cycles=max_cycles,
        watchdog=watchdog,
        oracle_sample=oracle_sample,
    )
    if recorder is not None:
        engine.recorder = recorder
    engine.add_threads(num_threads, lambda ctx: mutex_program(ctx, lock_addr))
    result: EngineResult = engine.run()
    cmc_execs = sum(op.executions for op in sim.cmc.operations())
    faults_injected = (
        sum(sim.faults.counters().values()) if sim.faults is not None else 0
    )
    return MutexRunStats(
        config_name=config.describe(),
        threads=num_threads,
        min_cycle=result.min_cycle,
        max_cycle=result.max_cycle,
        avg_cycle=result.avg_cycle,
        total_cycles=result.total_cycles,
        send_stalls=result.send_stalls,
        cmc_executions=cmc_execs,
        faults_injected=faults_injected,
        retransmits=result.retransmits,
        oracle_checks=result.oracle_checks,
    )


def mutex_task_spec(
    config: HMCConfig,
    num_threads: int,
    *,
    lock_addr: int = DEFAULT_LOCK_ADDR,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    fault_plan: Optional[FaultPlan] = None,
) -> TaskSpec:
    """One picklable sweep point for the parallel experiment engine.

    The spec captures everything :func:`run_mutex_workload` needs, so
    a worker process reproduces the point from scratch; its cache key
    folds in :data:`KERNEL_VERSION` plus the config and component
    fingerprints — and the fault-plan fingerprint when one is attached
    (see :mod:`repro.parallel.tasks`).
    """
    return TaskSpec(
        kernel="mutex",
        kernel_version=KERNEL_VERSION,
        runner="repro.host.kernels.mutex_kernel:run_task_spec",
        config=config,
        threads=num_threads,
        params=(("lock_addr", lock_addr), ("max_cycles", max_cycles)),
        fault_plan=fault_plan,
    )


def run_task_spec(spec: TaskSpec) -> MutexRunStats:
    """Execute a spec built by :func:`mutex_task_spec` (worker entry)."""
    params = spec.param_dict()
    return run_mutex_workload(
        spec.config,
        spec.threads,
        lock_addr=params.get("lock_addr", DEFAULT_LOCK_ADDR),
        max_cycles=params.get("max_cycles", DEFAULT_MAX_CYCLES),
        fault_plan=spec.fault_plan,
    )
