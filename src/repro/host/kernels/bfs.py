"""Breadth-first search with HMC CAS offload (related work [10], §II).

Nai & Kim's MEMSYS'15 case study replaced the *check-and-update* step
of BFS — "is this neighbour unvisited? if so, claim it for the next
level" — with HMC 2.0 ``CAS`` atomics, turning two host round trips
per edge into one and cutting kernel bandwidth.  This kernel
reproduces that comparison on the simulator:

* **baseline** mode: per inspected edge, RD16 the neighbour's level
  word, and if unvisited WR16 the new level (a racy read-modify-write
  that real hardware must fence or re-check);
* **cas** mode: a single ``CASEQ8`` per edge — compare the level word
  against UNVISITED and swap in the new level; the returned original
  value tells the host whether it claimed the vertex.

Levels live in a 16-byte slot per vertex.  Both modes produce the
same BFS levels (CAS resolves races exactly; the baseline is safe
here because each frontier is processed level-synchronously and
duplicate claims write identical values).

Graphs come from :mod:`networkx` when available; a built-in
deterministic Kronecker-ish generator is used otherwise so the kernel
has no hard dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.hmc.config import HMCConfig
from repro.hmc.sim import HMCSim
from repro.host.engine import HostEngine
from repro.host.thread import Program, ThreadCtx

__all__ = ["run_bfs", "BFSStats", "synthetic_graph", "reference_bfs_levels"]

#: Level-word value for an unvisited vertex.
UNVISITED = 0


def synthetic_graph(num_vertices: int, avg_degree: int, seed: int = 12345) -> List[Tuple[int, int]]:
    """Deterministic scale-free-ish edge list (no external deps).

    Uses a multiplicative-hash preferential attachment: each new edge
    endpoint is biased toward low vertex ids, giving the skewed degree
    distribution BFS workloads care about.
    """
    edges = []
    state = seed & 0xFFFFFFFFFFFFFFFF
    for v in range(1, num_vertices):
        for _ in range(avg_degree):
            state = (state * 6364136223846793005 + 1442695040888963407) & 0xFFFFFFFFFFFFFFFF
            # Bias toward low ids: square the unit sample.
            u = int(((state >> 11) / (1 << 53)) ** 2 * v)
            edges.append((u, v))
    return edges


def networkx_graph(num_vertices: int, avg_degree: int, seed: int = 12345) -> List[Tuple[int, int]]:
    """Edge list from networkx's Barabási–Albert generator."""
    import networkx as nx

    g = nx.barabasi_albert_graph(num_vertices, max(1, avg_degree // 2), seed=seed)
    return list(g.edges())


def reference_bfs_levels(num_vertices: int, edges: Sequence[Tuple[int, int]], root: int) -> Dict[int, int]:
    """Host-side BFS levels (1-based; UNVISITED vertices absent)."""
    adj: Dict[int, List[int]] = {}
    for u, v in edges:
        adj.setdefault(u, []).append(v)
        adj.setdefault(v, []).append(u)
    levels = {root: 1}
    frontier = [root]
    depth = 1
    while frontier:
        depth += 1
        nxt = []
        for u in frontier:
            for v in adj.get(u, ()):
                if v not in levels:
                    levels[v] = depth
                    nxt.append(v)
        frontier = nxt
    return levels


def _bfs_worker(
    ctx: ThreadCtx,
    level_base: int,
    edges: Sequence[Tuple[int, int]],
    frontier_levels: Dict[int, int],
    claimed: List[int],
    use_cas: bool,
) -> Program:
    """Inspect a slice of frontier edges and claim unvisited endpoints."""
    for u, v in edges:
        new_level = frontier_levels[u] + 1
        addr = level_base + v * 16
        if use_cas:
            rsp = yield ctx.caseq8(addr, UNVISITED, new_level)
            original = int.from_bytes(rsp.data[:8], "little")
            if original == UNVISITED:
                claimed.append(v)
        else:
            rsp = yield ctx.read(addr, 16)
            original = int.from_bytes(rsp.data[:8], "little")
            if original == UNVISITED:
                yield ctx.write(addr, new_level.to_bytes(8, "little") + bytes(8))
                claimed.append(v)


@dataclass(frozen=True)
class BFSStats:
    """Result of one BFS traversal."""

    config_name: str
    mode: str  # "cas" or "baseline"
    vertices: int
    edges: int
    levels: int
    cycles: int
    #: Request packets sent (the bandwidth proxy of the case study).
    requests: int
    #: Request+response FLITs moved across the links.
    flits: int
    verified: bool


def run_bfs(
    config: HMCConfig,
    *,
    num_vertices: int = 256,
    avg_degree: int = 4,
    num_threads: int = 8,
    use_cas: bool = True,
    use_networkx: bool = False,
    root: int = 0,
    seed: int = 12345,
    max_cycles: int = 5_000_000,
) -> BFSStats:
    """Level-synchronous BFS on the simulator; verify against host BFS."""
    edges = (
        networkx_graph(num_vertices, avg_degree, seed)
        if use_networkx
        else synthetic_graph(num_vertices, avg_degree, seed)
    )
    adj: Dict[int, List[int]] = {}
    for u, v in edges:
        adj.setdefault(u, []).append(v)
        adj.setdefault(v, []).append(u)

    sim = HMCSim(config)
    level_base = 1 << 20
    sim.mem_write(level_base + root * 16, (1).to_bytes(8, "little") + bytes(8))

    levels: Dict[int, int] = {root: 1}
    frontier = [root]
    depth_count = 1
    total_requests = 0
    total_flits = 0
    start_cycle = sim.cycle

    while frontier:
        # Gather this level's edge inspections.
        inspections = [
            (u, v) for u in frontier for v in adj.get(u, ()) if v not in levels
        ]
        if not inspections:
            break
        engine = HostEngine(sim, max_cycles=max_cycles)
        claimed_lists: List[List[int]] = []
        chunk = (len(inspections) + num_threads - 1) // num_threads
        for t in range(num_threads):
            part = inspections[t * chunk : (t + 1) * chunk]
            if not part:
                continue
            claimed: List[int] = []
            claimed_lists.append(claimed)
            engine.add_thread(
                lambda ctx, part=part, claimed=claimed: _bfs_worker(
                    ctx, level_base, part, levels, claimed, use_cas
                )
            )
        result = engine.run()
        total_requests += sum(t.requests for t in result.threads)
        nxt = []
        depth_count += 1
        for claimed in claimed_lists:
            for v in claimed:
                if v not in levels:
                    levels[v] = depth_count
                    nxt.append(v)
        frontier = nxt

    # Link FLIT counters are cumulative over the whole traversal.
    total_flits = sum(
        link.flits_in + link.flits_out for d in sim.devices for link in d.links
    )

    ref = reference_bfs_levels(num_vertices, edges, root)
    verified = True
    for v, lvl in ref.items():
        got = int.from_bytes(sim.mem_read(level_base + v * 16, 8), "little")
        if got != lvl:
            verified = False
            break

    return BFSStats(
        config_name=config.describe(),
        mode="cas" if use_cas else "baseline",
        vertices=num_vertices,
        edges=len(edges),
        levels=max(levels.values()),
        cycles=sim.cycle - start_cycle,
        requests=total_requests,
        flits=total_flits,
        verified=verified,
    )
