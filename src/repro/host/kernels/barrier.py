"""Sense-reversing barrier composed from CMC operations.

The paper's *Creative Experimentation* requirement (§IV.A) is about
combining CMC operations: here a classic centralized sense-reversing
barrier is built from two already-loaded plugins — ``hmc_fadd64``
(CMC04) for the atomic arrival count and plain reads for the sense
spin — with the last arrival flipping the sense via an ordinary write.

Memory layout at ``addr``::

    addr + 0   arrival counter (fadd64 target)
    addr + 8   sense word (threads spin reading it)

The workload runs R barrier rounds across N threads and verifies the
fundamental barrier property: no thread enters round ``r+1`` before
every thread has finished round ``r``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.hmc.commands import hmc_rqst_t
from repro.hmc.config import HMCConfig
from repro.hmc.sim import HMCSim
from repro.host.engine import HostEngine
from repro.host.thread import Program, ThreadCtx

__all__ = ["barrier_program", "run_barrier_workload", "BarrierStats"]

_M64 = (1 << 64) - 1


def _payload(v: int) -> bytes:
    return (v & _M64).to_bytes(8, "little") + bytes(8)


def barrier_program(
    ctx: ThreadCtx,
    addr: int,
    num_threads: int,
    rounds: int,
    log: List,
) -> Program:
    """R rounds of: arrive (fadd64), last flips sense, others spin."""
    sense = 0
    for r in range(rounds):
        log.append(("enter", r, ctx.tid))
        rsp = yield ctx.request(hmc_rqst_t.CMC04, addr, data=_payload(1))
        arrivals = int.from_bytes(rsp.data[:8], "little")
        if arrivals % num_threads == num_threads - 1:
            # Last arrival: reset understanding is implicit (counter
            # keeps growing); flip the sense word to release everyone.
            yield ctx.write(addr + 8, _payload(sense ^ 1)[:16])
        else:
            while True:
                rsp = yield ctx.read(addr + 8, 16)
                if int.from_bytes(rsp.data[:8], "little") == sense ^ 1:
                    break
        sense ^= 1
        log.append(("exit", r, ctx.tid))


@dataclass(frozen=True)
class BarrierStats:
    """One barrier-workload run."""

    config_name: str
    threads: int
    rounds: int
    total_cycles: int
    cycles_per_round: float
    #: True when no thread entered round r+1 before all exited round r.
    order_correct: bool


def _check_order(log: List, num_threads: int, rounds: int) -> bool:
    """Verify the barrier property from the event log.

    Two invariants:

    * no thread *exits* round ``r+1`` before every thread has exited
      round ``r`` (rounds complete strictly in order);
    * every thread exits every round exactly once.
    """
    exit_counts = [0] * rounds
    for kind, r, tid in log:
        if kind != "exit":
            continue
        if r > 0 and exit_counts[r - 1] < num_threads:
            return False  # someone escaped round r before r-1 finished
        exit_counts[r] += 1
        if exit_counts[r] > num_threads:
            return False
    return all(c == num_threads for c in exit_counts)


def run_barrier_workload(
    config: HMCConfig,
    num_threads: int,
    *,
    rounds: int = 4,
    addr: int = 0x0,
    sim: Optional[HMCSim] = None,
    max_cycles: int = 2_000_000,
) -> BarrierStats:
    """Run the sense-reversing barrier and verify round ordering."""
    if num_threads < 2:
        raise ValueError("a barrier needs at least 2 threads")
    if sim is None:
        sim = HMCSim(config)
        sim.load_cmc("repro.cmc_ops.fadd64")
    sim.mem_write(addr, bytes(16))
    log: List = []
    engine = HostEngine(sim, max_cycles=max_cycles)
    engine.add_threads(
        num_threads,
        lambda ctx: barrier_program(ctx, addr, num_threads, rounds, log),
    )
    result = engine.run()
    return BarrierStats(
        config_name=config.describe(),
        threads=num_threads,
        rounds=rounds,
        total_cycles=result.total_cycles,
        cycles_per_round=result.total_cycles / rounds,
        order_correct=_check_order(log, num_threads, rounds),
    )
