"""Single-source shortest paths with atomic-min offload.

The companion case study to BFS-with-CAS (§II, related work [10]):
level-synchronous Bellman-Ford relaxations, where the inner step
``dist[v] = min(dist[v], dist[u] + w)`` is either

* **baseline** — RD16 the distance, compare host-side, WR16 if
  smaller (two round trips per improving relaxation, racy under
  concurrency), or
* **amin** — a single ``hmc_amin64`` (CMC07): the min happens in the
  cube, the returned original value tells the host whether the vertex
  improved (so it joins the next frontier).

Distances are verified exactly against a host-side Dijkstra.  Edge
weights are small positive integers; "infinity" is ``2**62``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.hmc.commands import hmc_rqst_t
from repro.hmc.config import HMCConfig
from repro.hmc.sim import HMCSim
from repro.host.engine import HostEngine
from repro.host.thread import Program, ThreadCtx

__all__ = ["run_sssp", "SSSPStats", "weighted_graph", "reference_sssp"]

INFINITY = 1 << 62
_M64 = (1 << 64) - 1


def weighted_graph(
    num_vertices: int, avg_degree: int, seed: int = 77
) -> List[Tuple[int, int, int]]:
    """Deterministic connected-ish weighted edge list (u, v, w)."""
    state = seed & _M64
    edges = []
    for v in range(1, num_vertices):
        for _ in range(avg_degree):
            state = (state * 6364136223846793005 + 1442695040888963407) & _M64
            u = int(((state >> 11) / (1 << 53)) ** 2 * v)
            state = (state * 6364136223846793005 + 1442695040888963407) & _M64
            w = 1 + (state >> 48) % 9
            edges.append((u, v, w))
    return edges


def reference_sssp(
    num_vertices: int, edges: Sequence[Tuple[int, int, int]], source: int
) -> Dict[int, int]:
    """Host-side Dijkstra over the undirected weighted graph."""
    adj: Dict[int, List[Tuple[int, int]]] = {}
    for u, v, w in edges:
        adj.setdefault(u, []).append((v, w))
        adj.setdefault(v, []).append((u, w))
    dist = {source: 0}
    heap = [(0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, INFINITY):
            continue
        for v, w in adj.get(u, ()):
            nd = d + w
            if nd < dist.get(v, INFINITY):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def _relax_worker(
    ctx: ThreadCtx,
    dist_base: int,
    work: Sequence[Tuple[int, int]],  # (v, candidate) relaxations
    improved: List[int],
    use_amin: bool,
) -> Program:
    for v, candidate in work:
        addr = dist_base + v * 16
        if use_amin:
            payload = (candidate & _M64).to_bytes(8, "little") + bytes(8)
            rsp = yield ctx.request(hmc_rqst_t.CMC07, addr, payload)
            original = int.from_bytes(rsp.data[:8], "little")
            if candidate < original:
                improved.append(v)
        else:
            rsp = yield ctx.read(addr, 16)
            original = int.from_bytes(rsp.data[:8], "little")
            if candidate < original:
                yield ctx.write(
                    addr, (candidate & _M64).to_bytes(8, "little") + bytes(8)
                )
                improved.append(v)


@dataclass(frozen=True)
class SSSPStats:
    """One SSSP run."""

    config_name: str
    mode: str  # "amin" or "baseline"
    vertices: int
    edges: int
    rounds: int
    cycles: int
    requests: int
    verified: bool


def run_sssp(
    config: HMCConfig,
    *,
    num_vertices: int = 128,
    avg_degree: int = 3,
    num_threads: int = 8,
    use_amin: bool = True,
    source: int = 0,
    seed: int = 77,
    max_cycles: int = 5_000_000,
) -> SSSPStats:
    """Level-synchronous SSSP on the simulator; verify against Dijkstra."""
    edges = weighted_graph(num_vertices, avg_degree, seed)
    adj: Dict[int, List[Tuple[int, int]]] = {}
    for u, v, w in edges:
        adj.setdefault(u, []).append((v, w))
        adj.setdefault(v, []).append((u, w))

    sim = HMCSim(config)
    if use_amin:
        sim.load_cmc("repro.cmc_ops.amin64")
    dist_base = 1 << 20
    for v in range(num_vertices):
        init = 0 if v == source else INFINITY
        sim.mem_write(dist_base + v * 16, init.to_bytes(8, "little") + bytes(8))

    frontier = {source}
    rounds = 0
    total_requests = 0
    start_cycle = sim.cycle

    while frontier:
        rounds += 1
        # Gather this round's relaxations from current HMC distances,
        # pre-reduced per target vertex so each v is touched by exactly
        # one thread per round ("owner computes") — keeping the
        # baseline read-modify-write mode race-free for a fair
        # correctness comparison.
        best: Dict[int, int] = {}
        for u in frontier:
            du = int.from_bytes(sim.mem_read(dist_base + u * 16, 8), "little")
            for v, w in adj.get(u, ()):
                cand = du + w
                if cand < best.get(v, INFINITY):
                    best[v] = cand
        work: List[Tuple[int, int]] = sorted(best.items())
        if not work:
            break
        engine = HostEngine(sim, max_cycles=max_cycles)
        improved_lists: List[List[int]] = []
        chunk = (len(work) + num_threads - 1) // num_threads
        for t in range(num_threads):
            part = work[t * chunk : (t + 1) * chunk]
            if not part:
                continue
            improved: List[int] = []
            improved_lists.append(improved)
            engine.add_thread(
                lambda ctx, part=part, improved=improved: _relax_worker(
                    ctx, dist_base, part, improved, use_amin
                )
            )
        result = engine.run()
        total_requests += sum(t.requests for t in result.threads)
        frontier = {v for lst in improved_lists for v in lst}

    ref = reference_sssp(num_vertices, edges, source)
    verified = True
    for v in range(num_vertices):
        got = int.from_bytes(sim.mem_read(dist_base + v * 16, 8), "little")
        want = ref.get(v, INFINITY)
        if got != want:
            verified = False
            break

    return SSSPStats(
        config_name=config.describe(),
        mode="amin" if use_amin else "baseline",
        vertices=num_vertices,
        edges=len(edges),
        rounds=rounds,
        cycles=sim.cycle - start_cycle,
        requests=total_requests,
        verified=verified,
    )
