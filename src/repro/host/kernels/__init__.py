"""Workload kernels.

These modules hold the kernel *implementations*; the uniform way to
run one is by name through the workload registry
(:data:`repro.workloads.registry.WORKLOADS` — see
:mod:`repro.workloads`), which wraps each kernel in a
:class:`~repro.workloads.base.WorkloadFrontend` adapter.  The CLI,
sweeps, and trace recorder all resolve kernels that way.

* :mod:`repro.host.kernels.mutex_kernel` — the paper's Algorithm 1
  (the §V evaluation workload).
* :mod:`repro.host.kernels.stream` — STREAM Triad (stride-1, from the
  HMC-Sim 1.0 evaluation the paper's §II recounts).
* :mod:`repro.host.kernels.gups` — HPCC RandomAccess / GUPS (random
  access, same provenance), with an atomic-XOR16 variant.
* :mod:`repro.host.kernels.bfs` — breadth-first search with HMC CAS
  offload versus a host-side read-modify-write baseline (the
  related-work [10] case study).
* :mod:`repro.host.kernels.histogram` — atomic INC8 histogram versus
  a cache-line read-modify-write baseline (the Table II comparison as
  a live workload).
* :mod:`repro.host.kernels.ticket_kernel` — the FIFO ticket-lock
  contention workload (fairness counterpart to Algorithm 1).
* :mod:`repro.host.kernels.pointer_chase` — dependent-load latency
  measurement, with row-buffer effects under the timing extension.
* :mod:`repro.host.kernels.barrier` — a sense-reversing barrier
  composed from CMC operations.
* :mod:`repro.host.kernels.sssp` — single-source shortest paths with
  CAS-offloaded relaxations versus a host-side baseline.
"""

from repro.host.kernels.mutex_kernel import MutexRunStats, mutex_program, run_mutex_workload

__all__ = ["mutex_program", "run_mutex_workload", "MutexRunStats"]
