"""HPCC RandomAccess (GUPS) kernel (random access; HMC-Sim 1.0 eval, §II).

RandomAccess applies ``table[r % size] ^= r`` for a stream of
pseudo-random values — the pathological scatter workload the HMC-Sim
prior work ran against the stride-1 STREAM kernel.  Two host
strategies are implemented:

* **read-modify-write** (the traditional kernel): RD16 the table
  entry, XOR host-side, WR16 it back — two round trips per update;
* **atomic offload**: a single ``XOR16`` atomic performs the update
  in-situ — one round trip and half the packets, the PIM win the
  Gen2 atomics exist for.

The updates use the HPCC LCG so runs are deterministic and the final
table can be verified exactly against a host-side reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.hmc.config import HMCConfig
from repro.hmc.sim import HMCSim
from repro.host.engine import HostEngine
from repro.host.thread import Program, ThreadCtx

__all__ = ["gups_program", "run_gups", "GUPSStats", "hpcc_random_stream"]

_M64 = (1 << 64) - 1
#: HPCC RandomAccess polynomial constant.
_POLY = 0x0000000000000007


def hpcc_random_stream(seed: int, count: int) -> List[int]:
    """The HPCC RandomAccess pseudo-random sequence (GF(2) LFSR)."""
    out = []
    v = seed & _M64
    if v == 0:
        v = 1
    for _ in range(count):
        v = ((v << 1) ^ (_POLY if v >> 63 else 0)) & _M64
        out.append(v)
    return out


def gups_program(
    ctx: ThreadCtx,
    table_base: int,
    table_entries: int,
    updates: List[int],
    use_atomic: bool,
) -> Program:
    """Apply ``table[r % entries] ^= r`` for each r in ``updates``."""
    for r in updates:
        idx = r % table_entries
        addr = table_base + idx * 16
        operand = (r & _M64).to_bytes(8, "little") + bytes(8)
        if use_atomic:
            yield ctx.xor16(addr, operand)
        else:
            rsp = yield ctx.read(addr, 16)
            old = int.from_bytes(rsp.data[:8], "little")
            new = (old ^ r) & _M64
            yield ctx.write(addr, new.to_bytes(8, "little") + rsp.data[8:])


@dataclass(frozen=True)
class GUPSStats:
    """Result of one RandomAccess run."""

    config_name: str
    mode: str  # "rmw" or "atomic"
    threads: int
    updates: int
    cycles: int
    #: Updates retired per device cycle.
    updates_per_cycle: float
    #: Request packets sent (two per update for rmw, one for atomic).
    requests: int
    verified: bool


def run_gups(
    config: HMCConfig,
    *,
    num_threads: int = 16,
    updates_per_thread: int = 32,
    table_entries: int = 4096,
    use_atomic: bool = True,
    seed: int = 0x2545F4914F6CDD1D,
    max_cycles: int = 2_000_000,
) -> GUPSStats:
    """Run RandomAccess and verify the final table exactly.

    Note:
        The read-modify-write mode is only correct when no two
        in-flight updates hit the same entry concurrently; like the
        HPCC benchmark itself (which tolerates ~1% error), we accept
        that and verify against a reference computed with the same
        interleaving hazard — by construction each thread gets a
        disjoint update stream, and verification XOR-folds all
        updates, which is order-independent and lost-update-free only
        in atomic mode.  For rmw mode the verification is skipped
        when a collision occurred mid-flight.
    """
    sim = HMCSim(config)
    table_base = 1 << 20
    # Table starts at zero (cold pages read as zero) — no init traffic.
    all_updates = hpcc_random_stream(seed, num_threads * updates_per_thread)
    engine = HostEngine(sim, max_cycles=max_cycles)
    for t in range(num_threads):
        chunk = all_updates[t * updates_per_thread : (t + 1) * updates_per_thread]
        engine.add_thread(
            lambda ctx, chunk=chunk: gups_program(
                ctx, table_base, table_entries, chunk, use_atomic
            )
        )
    result = engine.run()

    # Reference: XOR-fold every update into its entry.
    ref = [0] * table_entries
    for r in all_updates:
        ref[r % table_entries] ^= r
    verified = True
    if use_atomic:
        for i in range(table_entries):
            got = int.from_bytes(sim.mem_read(table_base + i * 16, 8), "little")
            if got != ref[i]:
                verified = False
                break
    else:
        # Lost updates are possible under rmw; report but don't assert.
        mismatches = 0
        for i in range(table_entries):
            got = int.from_bytes(sim.mem_read(table_base + i * 16, 8), "little")
            if got != ref[i]:
                mismatches += 1
        verified = mismatches == 0

    total_updates = len(all_updates)
    return GUPSStats(
        config_name=config.describe(),
        mode="atomic" if use_atomic else "rmw",
        threads=num_threads,
        updates=total_updates,
        cycles=result.total_cycles,
        updates_per_cycle=total_updates / result.total_cycles,
        requests=sum(t.requests for t in result.threads),
        verified=verified,
    )
