"""Ticket-lock contention workload — the fairness counterpart to Algorithm 1.

Every thread executes, against one shared 16-byte ticket structure::

    (my_ticket, now_serving) = HMC_TICKET_ENTER(ADDR)
    while now_serving != my_ticket do
        now_serving = HMC_TICKET_WAIT(ADDR)
    end while
    HMC_TICKET_EXIT(ADDR)

Same hot-spot shape as the paper's Algorithm 1 so the two CMC designs
are directly comparable; additionally records the *acquisition order*
so fairness can be quantified (a ticket lock must grant in strict
arrival order; the Table V test-and-set design does not).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cmc_ops.ticket import (
    decode_enter,
    decode_serving,
    init_ticket_lock,
    load_ticket_ops,
)
from repro.hmc.commands import hmc_rqst_t
from repro.hmc.config import HMCConfig
from repro.hmc.sim import HMCSim
from repro.host.engine import HostEngine
from repro.host.thread import Program, ThreadCtx

__all__ = ["ticket_program", "run_ticket_workload", "TicketRunStats"]

DEFAULT_LOCK_ADDR = 0x0


def ticket_program(
    ctx: ThreadCtx, lock_addr: int, acquisitions: List[int]
) -> Program:
    """Enter/spin/exit; append this thread's ticket to ``acquisitions``
    at the moment it enters the critical section."""
    rsp = yield ctx.request(hmc_rqst_t.CMC21, lock_addr)
    my_ticket, serving = decode_enter(rsp.data)
    while serving != my_ticket:
        rsp = yield ctx.request(hmc_rqst_t.CMC22, lock_addr)
        serving = decode_serving(rsp.data)
    acquisitions.append(my_ticket)
    yield ctx.request(hmc_rqst_t.CMC23, lock_addr)


@dataclass(frozen=True)
class TicketRunStats:
    """One ticket-lock contention run."""

    config_name: str
    threads: int
    min_cycle: int
    max_cycle: int
    avg_cycle: float
    total_cycles: int
    #: True when the lock was granted in strict ticket (arrival) order.
    fifo_order: bool


def run_ticket_workload(
    config: HMCConfig,
    num_threads: int,
    *,
    lock_addr: int = DEFAULT_LOCK_ADDR,
    sim: Optional[HMCSim] = None,
    max_cycles: int = 1_000_000,
    recorder: Optional[object] = None,
) -> TicketRunStats:
    """Run the ticket-lock workload with ``num_threads`` threads."""
    if num_threads < 1:
        raise ValueError("num_threads must be >= 1")
    if sim is None:
        sim = HMCSim(config)
        load_ticket_ops(sim)
    init_ticket_lock(sim, lock_addr)
    acquisitions: List[int] = []
    engine = HostEngine(sim, max_cycles=max_cycles)
    if recorder is not None:
        engine.recorder = recorder
    engine.add_threads(
        num_threads, lambda ctx: ticket_program(ctx, lock_addr, acquisitions)
    )
    result = engine.run()
    return TicketRunStats(
        config_name=config.describe(),
        threads=num_threads,
        min_cycle=result.min_cycle,
        max_cycle=result.max_cycle,
        avg_cycle=result.avg_cycle,
        total_cycles=result.total_cycles,
        fifo_order=acquisitions == sorted(acquisitions),
    )
