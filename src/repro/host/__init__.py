"""Host-side simulation: simulated threads driving HMC devices.

The paper's evaluation executes a parallel algorithm against the
simulated device by modelling "units of parallelism" (threads) that
dispatch memory requests, retry on stalls, and spin on lock responses.
This subpackage provides:

* :mod:`repro.host.thread` — one simulated thread: a generator-based
  program plus its request-issue state machine;
* :mod:`repro.host.engine` — the cycle-driven engine that multiplexes
  every thread onto the device links, routes responses back by tag,
  and collects the MIN/MAX/AVG cycle statistics of §V.B;
* :mod:`repro.host.kernels` — the workloads: the paper's Algorithm 1
  mutex kernel, and the STREAM Triad / RandomAccess / BFS-with-CAS /
  histogram kernels from the surrounding literature.
"""

from repro.host.engine import EngineResult, HostEngine, ThreadResult
from repro.host.openloop import OpenLoopStats, run_open_loop
from repro.host.thread import SimThread, ThreadCtx, ThreadState
from repro.host.window import WindowedEngine, WindowedResult

__all__ = [
    "HostEngine",
    "EngineResult",
    "ThreadResult",
    "SimThread",
    "ThreadCtx",
    "ThreadState",
    "WindowedEngine",
    "WindowedResult",
    "OpenLoopStats",
    "run_open_loop",
]
