"""Simulated host threads.

A thread's *program* is a Python generator: it ``yield``s request
packets and receives the matching response packet back at the yield
point (or ``None`` for posted requests).  The engine owns the clock;
the generator only expresses the algorithm, e.g. the paper's
Algorithm 1::

    def program(ctx):
        rsp = yield ctx.lock(LOCK_ADDR)
        if decode_lock_response(rsp.data) == 1:
            yield ctx.unlock(LOCK_ADDR)
        else:
            while True:
                rsp = yield ctx.trylock(LOCK_ADDR)
                if decode_lock_response(rsp.data) == ctx.tid_value:
                    break
            yield ctx.unlock(LOCK_ADDR)

:class:`ThreadCtx` provides packet builders bound to the thread's
identity (tag and thread-id payload value), so programs never manage
tags themselves.
"""

from __future__ import annotations

import enum
from typing import Generator, Iterator, Optional

from repro.cmc_ops import mutex as _mutex
from repro.hmc.commands import hmc_rqst_t
from repro.hmc.packet import RequestPacket
from repro.hmc.sim import HMCSim

__all__ = ["ThreadState", "ThreadCtx", "SimThread", "Program"]

#: A thread program: a generator yielding request packets.
Program = Generator[RequestPacket, Optional[object], None]


class ThreadState(enum.Enum):
    """Issue state of a simulated thread."""

    READY = "ready"  # has a packet pending injection (or retrying a stall)
    WAITING = "waiting"  # packet accepted, awaiting its response
    DONE = "done"  # program finished


class ThreadCtx:
    """Per-thread request builders handed to thread programs.

    Attributes:
        tid: 0-based thread index.
        tid_value: the thread/task id written into lock structures and
            compared against trylock responses.  ``tid + 1`` so that a
            valid owner id is never 0 (0 means "no owner" in the
            initialized lock structure).
        link: device link this thread injects on.
        cub: target cube for all of this thread's requests.
    """

    def __init__(self, sim: HMCSim, tid: int, link: int, cub: int = 0):
        self.sim = sim
        self.tid = tid
        self.tid_value = tid + 1
        self.link = link
        self.cub = cub
        # Mutex packets are immutable per (op, addr) for a given
        # thread — same tag, tid payload, cub, and link — and a thread
        # never has two requests in flight, so the spin loop of
        # Algorithm 1 can reissue one cached packet instead of
        # rebuilding it every trylock.  (The device only ever writes
        # ``slid``, which is the same link each reissue.)
        self._mutex_cache: dict = {}

    # -- mutex CMC operations (Table V) --------------------------------------

    def lock(self, addr: int) -> RequestPacket:
        """Build an ``hmc_lock`` (CMC125) request."""
        key = ("lock", addr)
        pkt = self._mutex_cache.get(key)
        if pkt is None:
            pkt = self._mutex_cache[key] = _mutex.build_lock(
                self.sim, addr, self.tid, self.tid_value, cub=self.cub
            )
        return pkt

    def trylock(self, addr: int) -> RequestPacket:
        """Build an ``hmc_trylock`` (CMC126) request."""
        key = ("trylock", addr)
        pkt = self._mutex_cache.get(key)
        if pkt is None:
            pkt = self._mutex_cache[key] = _mutex.build_trylock(
                self.sim, addr, self.tid, self.tid_value, cub=self.cub
            )
        return pkt

    def unlock(self, addr: int) -> RequestPacket:
        """Build an ``hmc_unlock`` (CMC127) request."""
        key = ("unlock", addr)
        pkt = self._mutex_cache.get(key)
        if pkt is None:
            pkt = self._mutex_cache[key] = _mutex.build_unlock(
                self.sim, addr, self.tid, self.tid_value, cub=self.cub
            )
        return pkt

    # -- generic commands ------------------------------------------------------

    def request(self, rqst: hmc_rqst_t, addr: int, data: bytes = b"") -> RequestPacket:
        """Build any request with this thread's tag."""
        return self.sim.build_memrequest(rqst, addr, self.tid, cub=self.cub, data=data)

    def read(self, addr: int, nbytes: int = 16) -> RequestPacket:
        """Build an RD16..RD256 request for ``nbytes`` (16-byte granule)."""
        return self.request(_read_cmd(nbytes), addr)

    def write(self, addr: int, data: bytes, posted: bool = False) -> RequestPacket:
        """Build a WR/P_WR request sized to ``data``."""
        return self.request(_write_cmd(len(data), posted), addr, data)

    def inc8(self, addr: int, posted: bool = False) -> RequestPacket:
        """Build an INC8/P_INC8 atomic increment."""
        return self.request(
            hmc_rqst_t.P_INC8 if posted else hmc_rqst_t.INC8, addr
        )

    def xor16(self, addr: int, operand: bytes) -> RequestPacket:
        """Build a XOR16 atomic."""
        return self.request(hmc_rqst_t.XOR16, addr, operand)

    def caseq8(self, addr: int, compare: int, swap: int) -> RequestPacket:
        """Build a CASEQ8 atomic (compare low word, swap high word)."""
        payload = (compare & _M64).to_bytes(8, "little") + (swap & _M64).to_bytes(
            8, "little"
        )
        return self.request(hmc_rqst_t.CASEQ8, addr, payload)


_M64 = (1 << 64) - 1

_READ_CMDS = {
    16: hmc_rqst_t.RD16,
    32: hmc_rqst_t.RD32,
    48: hmc_rqst_t.RD48,
    64: hmc_rqst_t.RD64,
    80: hmc_rqst_t.RD80,
    96: hmc_rqst_t.RD96,
    112: hmc_rqst_t.RD112,
    128: hmc_rqst_t.RD128,
    256: hmc_rqst_t.RD256,
}
_WRITE_CMDS = {
    16: (hmc_rqst_t.WR16, hmc_rqst_t.P_WR16),
    32: (hmc_rqst_t.WR32, hmc_rqst_t.P_WR32),
    48: (hmc_rqst_t.WR48, hmc_rqst_t.P_WR48),
    64: (hmc_rqst_t.WR64, hmc_rqst_t.P_WR64),
    80: (hmc_rqst_t.WR80, hmc_rqst_t.P_WR80),
    96: (hmc_rqst_t.WR96, hmc_rqst_t.P_WR96),
    112: (hmc_rqst_t.WR112, hmc_rqst_t.P_WR112),
    128: (hmc_rqst_t.WR128, hmc_rqst_t.P_WR128),
    256: (hmc_rqst_t.WR256, hmc_rqst_t.P_WR256),
}


def _read_cmd(nbytes: int) -> hmc_rqst_t:
    try:
        return _READ_CMDS[nbytes]
    except KeyError:
        raise ValueError(
            f"read size {nbytes} is not an HMC granule {sorted(_READ_CMDS)}"
        ) from None


def _write_cmd(nbytes: int, posted: bool) -> hmc_rqst_t:
    try:
        pair = _WRITE_CMDS[nbytes]
    except KeyError:
        raise ValueError(
            f"write size {nbytes} is not an HMC granule {sorted(_WRITE_CMDS)}"
        ) from None
    return pair[1] if posted else pair[0]


class SimThread:
    """One simulated unit of parallelism and its issue state machine."""

    def __init__(self, tid: int, ctx: ThreadCtx, program: Iterator):
        self.tid = tid
        self.ctx = ctx
        self.program: Program = program
        self.state = ThreadState.READY
        self.pending: Optional[RequestPacket] = None
        #: True once the program has completed.  A plain attribute
        #: (kept in sync with ``state``) — the engine checks it after
        #: every resume, so it must not cost a property call.
        self.done = False
        self.start_cycle = 0
        self.finish_cycle: Optional[int] = None
        # Statistics.
        self.requests = 0
        self.stalls = 0
        self.responses = 0

    def start(self) -> None:
        """Prime the generator: obtain the first request (or finish)."""
        try:
            self.pending = next(self.program)
            self.state = ThreadState.READY
        except StopIteration:
            self.state = ThreadState.DONE
            self.done = True
            self.finish_cycle = self.start_cycle

    def resume(self, rsp: Optional[object], cycle: int) -> None:
        """Deliver a response (or None for posted) and fetch the next request."""
        if rsp is not None:
            self.responses += 1
        try:
            self.pending = self.program.send(rsp)
            self.state = ThreadState.READY
        except StopIteration:
            self.pending = None
            self.state = ThreadState.DONE
            self.done = True
            self.finish_cycle = cycle

    @property
    def elapsed(self) -> Optional[int]:
        """Cycles from start to completion, or None while running."""
        if self.finish_cycle is None:
            return None
        return self.finish_cycle - self.start_cycle
