"""Online sampled oracle: in-run shadow execution for the host engine.

PR 5's differential oracle only validates the datapath in offline
batch runs; this module makes the same functional reference a
*resident* property of any host-engine workload.  With
``HostEngine(oracle_sample=N)`` the engine samples roughly one in
``N`` response-expecting requests and shadow-executes it against
:class:`repro.oracle.model.Oracle`, raising
:class:`~repro.errors.OracleDivergenceError` when the device's answer
disagrees with the spec model.

Sampling protocol (the *hold window*):

1. when the sampling counter elects a request, its thread is *held* —
   the packet stays pending and nothing else injects;
2. the engine keeps draining until the context is quiescent (no thread
   WAITING, ``sim.idle()``) — at that point the device memory over the
   request's footprint is a stable, well-defined value;
3. the oracle image is synchronized from the engine over exactly that
   footprint (memory via ``sim.mem_read``, the register file via JTAG
   for MODE traffic) and the request is shadow-executed to an
   :class:`~repro.oracle.model.Expectation`;
4. the sampled packet is then sent *alone*; its response is compared
   field-for-field (command, ERRSTAT, payload, DINV) before the
   thread resumes and normal injection restarts.

Because the sample executes against a quiescent device, the vector
engine's dynamic gate is untouched: the sampled request simply flows
through an empty pipeline (whatever engine is composed), so sampling
perturbs only the sampled request's own issue window — not the
batching of the surrounding run.  The cost is a pipeline drain per
sample, which is why the default is sampled (1-in-N), not exhaustive;
``scripts/bench_to_json.py`` records the overhead as the
``oracle_online`` entry.

The shadow oracle is incompatible with fault injection: a fault plan
deliberately makes the device diverge from the functional contract
(dropped responses, flipped bits), which is the chaos suite's domain —
the constructor rejects a context with ``sim.faults`` attached.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import Any, Dict, Optional

from repro.errors import HMCSimError, OracleDivergenceError
from repro.faults.diagnostics import collect_deadlock_dump
from repro.hmc.amo import is_amo
from repro.hmc.commands import CommandKind, command_for_code
from repro.hmc.packet import RequestPacket

# _AMO_FOOTPRINT is the oracle's own read-footprint table; the shadow
# checker must sync exactly the bytes the oracle will read (syncing a
# rounded-up window could cross the capacity boundary and fabricate a
# divergence on a legal top-of-cube atomic).
from repro.oracle.model import _AMO_FOOTPRINT, Expectation, Oracle

__all__ = ["ShadowOracle", "CMC_READ_FOOTPRINT"]

#: Bytes of memory each known CMC op reads/writes at its target
#: address, keyed by registered ``op_name`` (the stable plugin
#: identity — command codes are remappable).  Ops absent here (e.g.
#: ``hmc_list_push``, whose node address is *read from memory* at
#: execute time) are never sampled: their footprint cannot be
#: synchronized up front.
CMC_READ_FOOTPRINT: Dict[str, int] = {
    "hmc_fadd64": 16,
    "hmc_popcount16": 16,
    "hmc_bloom_insert": 64,
    "hmc_amin64": 16,
    "hmc_amax64": 16,
    "hmc_fetchclear64": 16,
    "hmc_memzero256": 256,
    "hmc_ticket_enter": 16,
    "hmc_ticket_wait": 16,
    "hmc_ticket_exit": 16,
    "hmc_cas128": 16,
    "hmc_dotprod8x8": 128,
    "hmc_lock": 16,
    "hmc_trylock": 16,
    "hmc_unlock": 16,
}

#: Sentinel distinguishing "not classified yet" from "not sampleable".
_UNSET = object()


class ShadowOracle:
    """Sampling state machine for one host engine's online oracle.

    The engine owns the protocol (when to stop injecting, when the
    context is quiescent, when the sampled response arrives); this
    object owns the policy (which requests are sampleable, what state
    to synchronize, what the device must answer).

    States: *counting* (``held is None``) → *draining* (``held`` set,
    ``expect`` None) → *armed* (``expect`` computed, sampled packet in
    flight) → back to counting after :meth:`verify`.
    """

    def __init__(self, sim: Any, sample: int):
        if sample < 1:
            raise HMCSimError(
                f"oracle_sample must be >= 1 (1-in-N sampling), got {sample}"
            )
        if sim.faults is not None:
            raise HMCSimError(
                "the online oracle checks the fault-free functional contract; "
                "a context with a fault plan attached diverges by design — "
                "use the chaos suite or the differential fuzzer's faulty "
                "profile instead"
            )
        self.sim = sim
        self.sample = sample
        self.oracle = Oracle(sim.config)
        #: Completed shadow comparisons (surfaced as
        #: ``EngineResult.oracle_checks``).
        self.checks = 0
        #: The thread whose pending request is being sampled.
        self.held: Optional[Any] = None
        #: The oracle's verdict, once the context quiesced.
        self.expect: Optional[Expectation] = None
        self._pkt: Optional[RequestPacket] = None
        self._seen = 0
        self._mode: Dict[int, Any] = {}

    # -- run lifecycle -----------------------------------------------------------

    def begin_run(self) -> None:
        """Engine run entry: mirror the context's CMC registry and reset
        per-run sampling state.

        CMC plugins are loaded into the *context* (often after the
        engine is constructed), so the mirror happens at run entry.
        Each op is copied with ``executions=0`` — shadow executions
        must not pollute the context registry's usage statistics.
        """
        for op in self.sim.cmc.operations():
            if self.oracle.cmc.lookup(op.cmd) is None:
                self.oracle.cmc.register(dc_replace(op, executions=0))
                self._mode.pop(op.cmd, None)
        self.held = None
        self.expect = None
        self._pkt = None
        self._seen = 0
        self.checks = 0

    # -- sampling policy ---------------------------------------------------------

    def _classify(self, cmd: int) -> Optional[str]:
        """Sampleability class of a command code, memoized.

        ``None`` means never sampled: flow packets and posted requests
        produce no response to compare; unregistered or unknown-footprint
        CMC codes cannot be synchronized.
        """
        mode = self._mode.get(cmd, _UNSET)
        if mode is not _UNSET:
            return mode
        info = command_for_code(cmd)
        mode = None
        if info.kind is CommandKind.CMC:
            op = self.oracle.cmc.lookup(cmd)
            if (
                op is not None
                and not op.registration.posted
                and op.op_name in CMC_READ_FOOTPRINT
            ):
                mode = "cmc"
        elif info.kind is CommandKind.FLOW or info.posted:
            mode = None
        elif info.kind is CommandKind.READ:
            mode = "read"
        elif info.kind is CommandKind.WRITE:
            mode = "write"
        elif info.kind is CommandKind.MODE:
            mode = "mode"
        elif is_amo(cmd):
            mode = "amo"
        self._mode[cmd] = mode
        return mode

    def note_send(self, pkt: RequestPacket) -> None:
        """Count one accepted response-expecting send toward the next
        sample (no-op while a hold window is open)."""
        if self.held is None and self._classify(pkt.cmd) is not None:
            self._seen += 1

    def maybe_hold(self, thread: Any) -> bool:
        """Decide whether this injection attempt opens a hold window.

        Called by the engine before sending when no window is open;
        ``True`` parks the thread (its packet stays pending and is sent
        by the release path once the context quiesces).
        """
        if self._seen + 1 < self.sample:
            return False
        pkt = thread.pending
        if self._classify(pkt.cmd) is None:
            return False
        self._seen = 0
        self.held = thread
        self.expect = None
        self._pkt = pkt
        return True

    # -- the shadow execution ----------------------------------------------------

    def prepare(self) -> None:
        """The context is quiescent: synchronize the oracle over the
        sampled request's footprint and compute the expectation."""
        thread = self.held
        assert thread is not None and self._pkt is not None
        pkt = self._pkt
        dev = thread.ctx.cub
        self._sync(pkt, self._classify(pkt.cmd), dev)
        self.expect = self.oracle.execute(pkt, dev=dev, link=thread.ctx.link)

    def _sync(self, pkt: RequestPacket, mode: Optional[str], dev: int) -> None:
        """Copy exactly the engine state the oracle will read."""
        if mode == "mode":
            info = command_for_code(pkt.cmd)
            if info.rqst_name != "MD_RD":
                return  # MD_WR reads nothing
            try:
                value = self.sim.jtag_reg_read(dev, pkt.addr)
            except HMCSimError:
                return  # unimplemented index: both sides answer RSP_ERROR
            try:
                self.oracle.registers(dev).write(pkt.addr, value)
            except HMCSimError:
                pass  # read-only word: the construction value matches
            return
        if mode == "read":
            nbytes = command_for_code(pkt.cmd).rsp_data_bytes or 0
        elif mode == "write":
            return  # writes read nothing; the payload rides the packet
        elif mode == "amo":
            nbytes = _AMO_FOOTPRINT.get(pkt.cmd, 16)
        else:  # "cmc" — _classify guarantees a registered, known op
            op = self.oracle.cmc.lookup(pkt.cmd)
            nbytes = CMC_READ_FOOTPRINT[op.op_name]
        if nbytes <= 0:
            return
        if pkt.addr < 0 or pkt.addr + nbytes > self.oracle.capacity:
            return  # out of capacity: both sides answer ERRSTAT_ADDRESS
        self.oracle.mem_write(
            pkt.addr, self.sim.mem_read(pkt.addr, nbytes, dev=dev), dev=dev
        )

    def verify(self, rsp: Any) -> None:
        """Compare the sampled response against the expectation; close
        the hold window.

        Raises:
            OracleDivergenceError: when any response field disagrees.
                The dump's extra section names the sampled request, the
                expectation, and the actual response.
        """
        exp = self.expect
        pkt = self._pkt
        assert exp is not None and pkt is not None
        self.held = None
        self.expect = None
        self._pkt = None
        self.checks += 1
        if (
            rsp.cmd == exp.rsp_cmd
            and rsp.errstat == exp.errstat
            and rsp.data == exp.data
            and rsp.dinv == exp.dinv
        ):
            return
        got = (
            f"cmd={rsp.cmd:#04x} tag={rsp.tag} errstat={rsp.errstat:#04x} "
            f"dinv={rsp.dinv} data={rsp.data.hex() or '-'}"
        )
        sampled = (
            f"cmd={pkt.cmd:#04x} addr={pkt.addr:#x} tag={pkt.tag} "
            f"data[{len(pkt.data)}]"
        )
        raise OracleDivergenceError(
            f"online oracle divergence at cycle {self.sim.cycle}: sampled "
            f"request {sampled} answered [{got}], expected [{exp.describe()}]",
            dump=collect_deadlock_dump(
                self.sim,
                extra={
                    "sampled request": sampled,
                    "expected": exp.describe(),
                    "actual": got,
                    "oracle checks so far": str(self.checks),
                },
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "counting"
            if self.held is None
            else ("armed" if self.expect is not None else "draining")
        )
        return (
            f"ShadowOracle(sample={self.sample}, checks={self.checks}, "
            f"state={state})"
        )
