"""Open-loop traffic injection: latency versus offered load.

The closed-loop engines (:mod:`repro.host.engine`,
:mod:`repro.host.window`) model threads that wait for their own
responses.  Memory-system characterization also needs the *open-loop*
view: requests arrive at a fixed offered rate regardless of completion
— the setup behind every latency-vs-bandwidth "knee" curve, and the
regime where the HMC-Sim queueing structures (and their stalls)
actually fill.

:func:`drive_open_loop` is the injector itself: it pulls packets from
a ``build(idx, tag)`` callback at ``offered_rate`` requests/cycle for
``duration`` cycles, with the 11-bit tag space bounding the in-flight
population exactly as it would a real host; when no tag is free the
injector drops the injection slot and counts it (offered > sustainable
load shows up as both latency growth and injection backlog).

:func:`run_open_loop` is the classic characterization harness on top:
RD16 traffic over a deterministic address pattern ("uniform" LCG
scatter or "stride" streaming), spread round-robin over the links.
Trace replay (:func:`repro.workloads.replay.replay_open_loop`) drives
the same injector with recorded request streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import HMCStatus
from repro.hmc.commands import hmc_rqst_t
from repro.hmc.config import HMCConfig
from repro.hmc.sim import HMCSim

__all__ = ["OpenLoopStats", "drive_open_loop", "run_open_loop"]

_LCG_MUL = 6364136223846793005
_LCG_ADD = 1442695040888963407
_M64 = (1 << 64) - 1


def _pattern_addrs(pattern: str, count: int, footprint: int, seed: int) -> List[int]:
    """Deterministic address stream, 16-byte aligned within ``footprint``."""
    blocks = footprint // 16
    addrs: List[int] = []
    if pattern == "stride":
        for i in range(count):
            addrs.append((i % blocks) * 16)
    elif pattern == "uniform":
        state = seed & _M64
        for _ in range(count):
            state = (state * _LCG_MUL + _LCG_ADD) & _M64
            addrs.append(((state >> 20) % blocks) * 16)
    else:
        raise ValueError(f"unknown pattern {pattern!r}")
    return addrs


@dataclass
class OpenLoopStats:
    """Outcome of one open-loop run."""

    config_name: str
    pattern: str
    offered_rate: float
    duration: int
    injected: int
    completed: int
    #: Injection slots lost to full queues or an empty tag pool.
    backlogged: int
    drain_cycles: int
    latencies: List[int] = field(default_factory=list)
    #: In-flight target when the run was depth-gated (``--depth``);
    #: ``None`` for pure rate-driven runs.
    depth: Optional[int] = None

    @property
    def achieved_rate(self) -> float:
        """Completed requests per cycle over the injection window.

        A zero-length window (``duration=0``, or a depth-gated run whose
        stream never opened a measured window) completed nothing per
        cycle: 0.0, not a ``ZeroDivisionError`` — which would also
        poison :attr:`saturated`.
        """
        if self.duration <= 0:
            return 0.0
        return self.completed / self.duration

    @property
    def mean_latency(self) -> float:
        """Mean request latency in cycles."""
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    @property
    def p99_latency(self) -> int:
        """99th-percentile latency in cycles."""
        if not self.latencies:
            return 0
        xs = sorted(self.latencies)
        return xs[min(len(xs) - 1, (len(xs) * 99) // 100)]

    @property
    def saturated(self) -> bool:
        """True when the device could not absorb the offered load."""
        return self.backlogged > 0 or self.achieved_rate < self.offered_rate * 0.95


def drive_open_loop(
    sim: HMCSim,
    stats: OpenLoopStats,
    count: int,
    build: Callable[[int, int], object],
    *,
    offered_rate: float,
    duration: int,
    max_drain: int = 100_000,
    link_for: Optional[Callable[[int], int]] = None,
    depth: Optional[int] = None,
) -> OpenLoopStats:
    """Inject ``count`` requests at a fixed rate; fill in ``stats``.

    Args:
        sim: the simulation context (state already prepared).
        stats: the stats object to accumulate into (identity fields set
            by the caller).
        count: length of the request stream; injection stops early when
            the stream is exhausted before ``duration`` elapses.
        build: ``build(idx, tag)`` returns the ``idx``-th request packet
            carrying ``tag`` (tags are leased from the free pool and
            recycled on completion).
        offered_rate: requests per device cycle (fractional rates use a
            deterministic accumulator).
        duration: injection window in cycles; the run then drains.
        max_drain: drain-phase safety bound.
        link_for: link choice per stream index; round-robin over the
            config's links when omitted.
        depth: when set, ignore ``offered_rate``/``duration`` and gate
            injection on the in-flight population instead: every cycle,
            top the outstanding count back up to ``depth`` (stopping at
            a stall — the queues are full past this point anyway) until
            the stream is exhausted, then drain.  This is the deep-queue
            regime: a stall is back-pressure, not a lost slot, so only
            genuine queue refusals count as ``backlogged``.
            ``stats.duration`` is rewritten to the *measured* injection
            window so ``achieved_rate`` stays honest.
    """
    num_links = sim.config.num_links
    free_tags = list(range(0x800))
    inject_cycle: Dict[int, int] = {}

    credit = 0.0
    idx = 0
    link_rr = 0

    def drain_responses() -> None:
        for link in range(num_links):
            for rsp in sim.recv_batch(link=link):
                stats.completed += 1
                stats.latencies.append(sim.cycle - inject_cycle.pop(rsp.tag))
                free_tags.append(rsp.tag)

    if depth is not None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        window = 0
        while idx < count and window < max_drain:
            while len(inject_cycle) < depth and idx < count and free_tags:
                tag = free_tags.pop()
                pkt = build(idx, tag)
                link = link_rr if link_for is None else link_for(idx)
                status = sim.send(pkt, link=link)
                if status is HMCStatus.STALL:
                    free_tags.append(tag)
                    stats.backlogged += 1
                    break
                if sim._expects_response(pkt):
                    inject_cycle[tag] = sim.cycle
                else:
                    free_tags.append(tag)  # posted: nothing to await
                stats.injected += 1
                idx += 1
                link_rr = (link_rr + 1) % num_links
            sim.clock()
            drain_responses()
            window += 1
        stats.duration = max(1, window)
        stats.depth = depth
    else:
        for _ in range(duration):
            credit += offered_rate
            while credit >= 1.0 and idx < count:
                credit -= 1.0
                if not free_tags:
                    stats.backlogged += 1
                    continue
                tag = free_tags.pop()
                pkt = build(idx, tag)
                link = link_rr if link_for is None else link_for(idx)
                status = sim.send(pkt, link=link)
                if status is HMCStatus.STALL:
                    free_tags.append(tag)
                    stats.backlogged += 1
                else:
                    if sim._expects_response(pkt):
                        inject_cycle[tag] = sim.cycle
                    else:
                        free_tags.append(tag)  # posted: nothing to await
                    stats.injected += 1
                    idx += 1
                link_rr = (link_rr + 1) % num_links
            sim.clock()
            drain_responses()

    # Drain phase: no new injections.
    drained = 0
    while inject_cycle and drained < max_drain:
        sim.clock()
        drain_responses()
        drained += 1
    stats.drain_cycles = drained
    return stats


def run_open_loop(
    config: HMCConfig,
    *,
    offered_rate: float = 2.0,
    duration: int = 512,
    pattern: str = "uniform",
    footprint: int = 1 << 22,
    seed: int = 0xFEED,
    max_drain: int = 100_000,
    depth: Optional[int] = None,
) -> OpenLoopStats:
    """Inject RD16 traffic at a fixed rate and measure latency/throughput.

    Args:
        config: device configuration.
        offered_rate: requests per device cycle (fractional rates use a
            deterministic accumulator).  With ``depth`` set it only
            sizes the stream (``offered_rate * duration`` requests).
        duration: injection window in cycles; the run then drains.
        pattern: "uniform" scatter or "stride" streaming.
        footprint: byte range the addresses cover.
        seed: pattern seed.
        max_drain: drain-phase safety bound.
        depth: in-flight target; switches the injector to depth-gated
            mode (see :func:`drive_open_loop`).
    """
    sim = HMCSim(config)
    total_wanted = int(offered_rate * duration) + 1
    addrs = _pattern_addrs(pattern, total_wanted, footprint, seed)
    stats = OpenLoopStats(
        config_name=config.describe(),
        pattern=pattern,
        offered_rate=offered_rate,
        duration=duration,
        injected=0,
        completed=0,
        backlogged=0,
        drain_cycles=0,
    )
    return drive_open_loop(
        sim,
        stats,
        len(addrs),
        lambda idx, tag: sim.build_memrequest(hmc_rqst_t.RD16, addrs[idx], tag),
        offered_rate=offered_rate,
        duration=duration,
        max_drain=max_drain,
        depth=depth,
    )
