"""The cycle-driven host engine.

Multiplexes any number of simulated threads onto a simulation context:
each engine cycle (= one device cycle)

1. every READY thread attempts to inject its pending request on its
   link (a full crossbar queue keeps it READY — the ``HMC_STALL``
   retry loop of the C harnesses);
2. the context clocks once;
3. every link is drained of retired responses, which are routed back
   to their issuing thread by tag; resumed threads may produce and
   inject their next request *within the same cycle*, which is what
   makes the paper's uncontended Algorithm-1 fast path cost exactly
   6 cycles (3 per round trip, two round trips).

The engine reports per-thread completion cycles and the paper's
MIN/MAX/AVG statistics (§V.B: MIN_CYCLE, MAX_CYCLE, AVG_CYCLE).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from operator import attrgetter
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.errors import HMCSimError, HMCStatus, SimDeadlockError
from repro.faults.diagnostics import collect_deadlock_dump
from repro.faults.invariants import InvariantChecker
from repro.faults.watchdog import TagWatchdog
from repro.hmc.sim import HMCSim
from repro.host.thread import Program, SimThread, ThreadCtx, ThreadState

__all__ = ["HostEngine", "EngineResult", "ThreadResult"]

#: Sort key restoring the seed engine's tid-order injection scan.
_BY_TID = attrgetter("tid")


def _recv_iter(sim, dev, link):
    """One-at-a-time drain of a link (the unbatched retirement path)."""
    while True:
        rsp = sim.recv(dev=dev, link=link)
        if rsp is None:
            return
        yield rsp


@dataclass(frozen=True)
class ThreadResult:
    """Completion record for one simulated thread."""

    tid: int
    link: int
    cycles: int
    requests: int
    stalls: int
    responses: int


@dataclass
class EngineResult:
    """Outcome of one engine run.

    ``min_cycle`` / ``max_cycle`` / ``avg_cycle`` are the §V.B
    statistics: the minimum, maximum, and average number of cycles any
    thread required to perform the algorithm.
    """

    threads: List[ThreadResult] = field(default_factory=list)
    total_cycles: int = 0
    send_stalls: int = 0
    #: Watchdog retransmissions performed during the run.
    retransmits: int = 0
    #: Responses tolerated as duplicates (fault duplication, or a late
    #: response racing its own retransmission).
    duplicate_rsps: int = 0
    #: Completed invariant-checker passes (0 when checking is off).
    invariant_checks: int = 0
    #: Shadow-oracle comparisons performed (0 when sampling is off).
    oracle_checks: int = 0

    @property
    def min_cycle(self) -> int:
        """MIN_CYCLE: fastest thread's completion time."""
        return min(t.cycles for t in self.threads)

    @property
    def max_cycle(self) -> int:
        """MAX_CYCLE: slowest thread's completion time."""
        return max(t.cycles for t in self.threads)

    @property
    def avg_cycle(self) -> float:
        """AVG_CYCLE: mean completion time across threads."""
        return sum(t.cycles for t in self.threads) / len(self.threads)


class HostEngine:
    """Drives a set of thread programs against one simulation context.

    Args:
        sim: the simulation context.
        max_cycles: safety bound; exceeding it raises
            :class:`~repro.errors.SimDeadlockError` with a diagnostic
            dump (a deadlocked workload would otherwise spin forever).
        watchdog: optional :class:`~repro.faults.watchdog.TagWatchdog`.
            When given, every response-expecting send arms a deadline;
            a timed-out tag is retransmitted (bounded, with exponential
            backoff) and an exhausted tag raises ``SimDeadlockError``.
        invariants: ``True`` (build an
            :class:`~repro.faults.invariants.InvariantChecker` for
            ``sim``) or a ready checker.  When set, every engine cycle
            verifies tag/token conservation and queue bounds.
        oracle_sample: when set to ``N``, roughly one in ``N``
            response-expecting requests is shadow-executed against the
            functional reference model
            (:mod:`repro.host.shadow`); a disagreement raises
            :class:`~repro.errors.OracleDivergenceError`.  Rejected
            when ``sim`` has a fault plan attached — faults diverge
            from the functional contract by design.
    """

    def __init__(
        self,
        sim: HMCSim,
        *,
        max_cycles: int = 1_000_000,
        watchdog: Optional[TagWatchdog] = None,
        invariants: Union[bool, InvariantChecker, None] = None,
        batched: bool = True,
        oracle_sample: Optional[int] = None,
    ):
        self.sim = sim
        self.max_cycles = max_cycles
        self.watchdog = watchdog
        #: Batched host-side retirement: drain each link's whole retire
        #: buffer with one ``recv_batch`` call per cycle instead of one
        #: ``recv`` round-trip per response.  Identical semantics (the
        #: parity tests pin per-thread completion cycles); ``False``
        #: keeps the one-at-a-time path for those comparisons.
        self.batched = batched
        if invariants is True:
            invariants = InvariantChecker(sim)
        elif invariants is False:
            invariants = None
        self.invariants = invariants
        #: Tolerate responses for non-waiting threads (duplication
        #: faults, late responses racing their own retransmission)
        #: instead of raising — on whenever the run can produce them.
        self.resilient = watchdog is not None or sim.faults is not None
        self.duplicate_rsps = 0
        #: Online sampled oracle (see :mod:`repro.host.shadow`).  The
        #: import is deferred so engine users that never sample don't
        #: pay for the oracle stack.
        self.shadow = None
        if oracle_sample is not None:
            from repro.host.shadow import ShadowOracle

            self.shadow = ShadowOracle(sim, oracle_sample)
        #: Optional trace recorder (``on_send(cycle, thread, pkt)`` per
        #: accepted send, ``on_result(result)`` at completion) — one
        #: ``None``-check per send when unset.  See
        #: :class:`repro.workloads.replay.TraceRecorder`.
        self.recorder = None
        self.threads: List[SimThread] = []
        self._by_tag: Dict[int, SimThread] = {}

    def add_thread(
        self,
        program_fn: Callable[[ThreadCtx], Program],
        *,
        link: Optional[int] = None,
        cub: int = 0,
    ) -> SimThread:
        """Create a thread running ``program_fn(ctx)``.

        Threads are assigned round-robin to links unless ``link`` is
        given — the distribution the paper's simulations use.
        """
        tid = len(self.threads)
        if tid > 0x7FF:
            raise HMCSimError("the 11-bit tag space bounds the engine at 2048 threads")
        if link is None:
            link = tid % self.sim.config.num_links
        ctx = ThreadCtx(self.sim, tid, link, cub)
        thread = SimThread(tid, ctx, program_fn(ctx))
        self.threads.append(thread)
        self._by_tag[tid] = thread
        return thread

    def add_threads(
        self,
        n: int,
        program_fn: Callable[[ThreadCtx], Program],
        *,
        cub: int = 0,
    ) -> List[SimThread]:
        """Add ``n`` identical threads (round-robin links)."""
        return [self.add_thread(program_fn, cub=cub) for _ in range(n)]

    # -- the engine loop ------------------------------------------------------

    def _try_send(self, thread: SimThread, cycle: Optional[int] = None) -> None:
        """Inject a READY thread's pending packet; resume posted sends.

        ``cycle`` may be passed by callers that already know the current
        cycle (the run loop reads it once per phase instead of once per
        thread); it is only used to timestamp posted-send resumes.
        """
        pkt = thread.pending
        assert pkt is not None
        shadow = self.shadow
        if shadow is not None:
            held = shadow.held
            if held is not None:
                # A hold window is open: only the sampled thread may
                # inject, and only once the expectation is computed
                # (i.e. the context quiesced).  Everyone else keeps
                # their packet pending and retries next cycle.
                if thread is not held or shadow.expect is None:
                    return
            elif shadow.maybe_hold(thread):
                return
        status = self.sim.send(pkt, dev=thread.ctx.cub, link=thread.ctx.link)
        if status is HMCStatus.STALL:
            thread.stalls += 1
            return
        thread.requests += 1
        thread.pending = None
        if self.recorder is not None:
            self.recorder.on_send(
                self.sim.cycle if cycle is None else cycle, thread, pkt
            )
        if self.sim._expects_response(pkt):
            thread.state = ThreadState.WAITING
            if shadow is not None:
                shadow.note_send(pkt)
            if self.watchdog is not None:
                self.watchdog.arm(
                    pkt.tag,
                    pkt,
                    dev=thread.ctx.cub,
                    link=thread.ctx.link,
                    cycle=self.sim.cycle if cycle is None else cycle,
                )
        else:
            # Posted: the program resumes with None and may produce its
            # next request, injected on a later cycle.
            thread.resume(None, self.sim.cycle if cycle is None else cycle)

    def run(self) -> EngineResult:
        """Run until every thread completes; return the statistics.

        Raises:
            HMCSimError: if the workload does not complete within
                ``max_cycles`` cycles.
        """
        # A reused engine must not leak the previous run's resilience
        # statistics into this run's result.
        if self.watchdog is not None:
            self.watchdog.reset()
        self.duplicate_rsps = 0
        shadow = self.shadow
        if shadow is not None:
            shadow.begin_run()

        for thread in self.threads:
            thread.start_cycle = self.sim.cycle
            thread.start()

        start = self.sim.cycle
        deadline = start + self.max_cycles
        # The live list persists across cycles and is pruned only on the
        # cycles where some thread actually finished; re-filtering all
        # threads every cycle is O(threads) of pure overhead on long
        # contended runs where the population changes rarely.
        live = [t for t in self.threads if not t.done]
        num_devs = self.sim.config.num_devs
        num_links = self.sim.config.num_links
        READY = ThreadState.READY
        # Threads that may inject at the next phase 1: sends that
        # stalled stay in the list, threads resumed during phase 3 with
        # a new pending request are appended.  Everything else is
        # WAITING and cannot become injectable without a response, so
        # scanning the whole live list every cycle is unnecessary —
        # only the iteration order (thread id, the seed engine's full
        # scan order) has to be restored before injecting.
        inject = [t for t in live if t.state is READY and t.pending is not None]
        # ``inject`` is kept sorted by tid across cycles: the initial
        # population is in tid order (``self.threads`` is), and the
        # phase-1 scan compacts it in place, which preserves order.
        # Only phase-3/watchdog appends can break it, so they set the
        # dirty flag and the sort runs on the cycles that need it
        # instead of every cycle of a long contended run.
        inject_dirty = False
        by_tid = _BY_TID
        sim = self.sim
        by_tag = self._by_tag
        WAITING = ThreadState.WAITING
        wd = self.watchdog
        checker = self.invariants
        resilient = self.resilient
        batched = self.batched
        while live:
            cyc = sim.cycle
            if cyc >= deadline:
                raise SimDeadlockError(
                    f"workload did not complete within {self.max_cycles} cycles "
                    f"({len(live)} threads still running)",
                    dump=collect_deadlock_dump(sim, extra=self._thread_dump(live)),
                )
            finished = False
            # Phase 0 (sampling, only while a hold window is draining):
            # once nothing is waiting and the context is idle, the
            # sampled request's footprint is stable — synchronize the
            # oracle and compute the expectation; phase 1 then injects
            # the sampled packet alone.
            if (
                shadow is not None
                and shadow.held is not None
                and shadow.expect is None
                and sim.idle()
                and not any(t.state is WAITING for t in live)
            ):
                shadow.prepare()
            # Phase 1: inject pending requests (tid order, as the full
            # thread scan would visit them).
            if inject:
                if inject_dirty:
                    if len(inject) > 1:
                        inject.sort(key=by_tid)
                    inject_dirty = False
                # Compact in place: threads that stalled (or chained a
                # posted send) stay, everything else is dropped — no
                # per-cycle retry-list allocation.
                keep = 0
                for thread in inject:
                    self._try_send(thread, cyc)
                    if thread.done:
                        finished = True
                    elif thread.state is READY and thread.pending is not None:
                        inject[keep] = thread
                        keep += 1
                del inject[keep:]
            # Phase 2: one device cycle.
            sim.clock()
            cyc = sim.cycle
            # Phase 3: drain responses, resume threads, same-cycle
            # reissue.  Batched mode takes each link's completed
            # responses as one vector per cycle; the one-at-a-time
            # recv loop below it is behaviourally identical (responses
            # only appear during ``sim.clock``, so nothing can land in
            # the retire buffer mid-drain) and kept for parity tests.
            for dev in range(num_devs):
                links = sim.devices[dev].links
                for link in range(num_links):
                    if not links[link].drain_ready():
                        continue
                    if batched:
                        responses = sim.recv_batch(dev=dev, link=link)
                    else:
                        responses = _recv_iter(sim, dev, link)
                    for rsp in responses:
                        if batched and resilient:
                            # The serial path discards the outstanding
                            # key as each response is popped, so a
                            # duplicated response arriving *after* a
                            # same-cycle reissue re-armed the tag
                            # consumes the reissue's entry.  recv_batch
                            # discharged the whole vector up front;
                            # re-discard here or the reissued thread's
                            # next strict-tag send diverges.
                            sim._outstanding.discard(
                                (rsp.cub << 11) | rsp.tag
                            )
                        thread = by_tag.get(rsp.tag)
                        if thread is None or thread.state is not WAITING:
                            if resilient:
                                # A duplicated response, or a late
                                # response racing its own watchdog
                                # retransmission: consume and move on.
                                self.duplicate_rsps += 1
                                continue
                            raise HMCSimError(
                                f"response tag {rsp.tag} does not match a waiting thread"
                            )
                        if wd is not None:
                            wd.disarm(rsp.tag)
                        if shadow is not None and shadow.held is thread:
                            # The sampled response: raises
                            # OracleDivergenceError on disagreement,
                            # closes the hold window otherwise.
                            shadow.verify(rsp)
                        thread.resume(rsp, cyc)
                        if thread.done:
                            finished = True
                        elif thread.state is READY and thread.pending is not None:
                            self._try_send(thread, cyc)
                            if thread.done:
                                finished = True
                            elif (
                                thread.state is READY
                                and thread.pending is not None
                            ):
                                # Same-cycle reissue stalled (or chained
                                # a posted send): retry next phase 1.
                                inject.append(thread)
                                inject_dirty = True
            # Phase 4 (resilience, only when configured): retransmit
            # timed-out tags, then verify conservation invariants.
            if wd is not None:
                for entry in wd.poll(cyc):
                    if wd.exhausted(entry):
                        extra = self._thread_dump(live)
                        lost_kind = None
                        if sim.faults is not None:
                            lost_kind = sim.faults.lost_by.get(
                                (entry.packet.cub, entry.tag)
                            )
                        extra["exhausted tag"] = (
                            f"tag {entry.tag} (dev {entry.packet.cub}) "
                            f"after {entry.attempts} retransmission(s)"
                            + (
                                f", last lost to fault {lost_kind!r}"
                                if lost_kind
                                else ""
                            )
                        )
                        raise SimDeadlockError(
                            f"workload did not complete: tag {entry.tag} "
                            f"still unanswered after {entry.attempts} "
                            f"retransmission(s)",
                            dump=collect_deadlock_dump(sim, extra=extra),
                        )
                    thread = by_tag.get(entry.tag)
                    if thread is None or thread.state is not WAITING:
                        continue  # answered in this very drain phase
                    # Forget the outstanding tag (and any fault-lost
                    # record), hand the packet back to the thread, and
                    # let the normal inject path retransmit it.
                    sim.abandon_tag(entry.packet.cub, entry.tag)
                    wd.note_retransmit()
                    thread.pending = entry.packet
                    thread.state = READY
                    inject.append(thread)
                    inject_dirty = True
            if checker is not None:
                checker.check(cyc)
            if finished:
                live = [t for t in live if not t.done]

        result = EngineResult(total_cycles=self.sim.cycle - start)
        for thread in self.threads:
            assert thread.finish_cycle is not None
            result.threads.append(
                ThreadResult(
                    tid=thread.tid,
                    link=thread.ctx.link,
                    cycles=thread.finish_cycle - thread.start_cycle,
                    requests=thread.requests,
                    stalls=thread.stalls,
                    responses=thread.responses,
                )
            )
            result.send_stalls += thread.stalls
        if wd is not None:
            result.retransmits = wd.retransmits
        result.duplicate_rsps = self.duplicate_rsps
        if shadow is not None:
            result.oracle_checks = shadow.checks
        if checker is not None:
            result.invariant_checks = checker.checks
        if self.recorder is not None:
            self.recorder.on_result(result)
        return result

    def _thread_dump(self, live: Sequence[SimThread]) -> Dict[str, str]:
        """Thread-state context for a deadlock dump: names every stuck
        thread and the tag it is waiting on."""
        shown = [
            f"tid{t.tid}:{t.state.name}"
            + (f"(tag={t.tid})" if t.state is ThreadState.WAITING else "")
            for t in live[:32]
        ]
        if len(live) > 32:
            shown.append(f"... (+{len(live) - 32} more)")
        summary = " ".join(shown) if shown else "<none>"
        return {f"stuck threads ({len(live)})": summary}
