"""Windowed host issue: multiple outstanding requests per thread.

The paper's Algorithm-1 harness (and :class:`repro.host.engine.
HostEngine`) models synchronous threads — one outstanding request
each, matching a spin loop's data dependence.  Real memory pipelines
issue *windows* of independent requests (the paper's §III bandwidth
argument assumes exactly that), so this module provides
:class:`WindowedEngine`: thread programs yield a **list** of request
packets and resume with the matching list of responses once all of
them retire.

Tag allocation: thread ``t`` with window ``W`` owns tags
``t*W .. t*W+W-1``, so ``threads x W`` must fit the 11-bit tag space —
the same resource limit a real HMC host faces.

Used by the window-scaling experiment
(``benchmarks/bench_ext_window_scaling.py``): memory-level parallelism
raises delivered bandwidth until the device's response bandwidth
saturates.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Sequence

from repro.errors import HMCSimError, HMCStatus, SimDeadlockError
from repro.faults.diagnostics import collect_deadlock_dump
from repro.hmc.packet import RequestPacket, ResponsePacket
from repro.hmc.sim import HMCSim
from repro.host.thread import ThreadCtx

__all__ = ["WindowedEngine", "WindowedResult", "BatchProgram"]

#: A windowed program: yields batches of packets, receives batches of
#: responses (None entries for posted requests).
BatchProgram = Generator[List[RequestPacket], List[Optional[ResponsePacket]], None]


class _WThread:
    """Bookkeeping for one windowed thread."""

    __slots__ = (
        "tid", "ctx", "program", "done", "to_send", "responses",
        "awaiting", "finish_cycle", "requests", "stalls",
    )

    def __init__(self, tid: int, ctx: ThreadCtx, program: BatchProgram):
        self.tid = tid
        self.ctx = ctx
        self.program = program
        self.done = False
        #: (slot, packet) pairs not yet accepted by the device.
        self.to_send: List[tuple] = []
        #: Responses collected for the current batch, by slot.
        self.responses: List[Optional[ResponsePacket]] = []
        #: Slots still awaiting a response packet.
        self.awaiting: int = 0
        self.finish_cycle: Optional[int] = None
        self.requests = 0
        self.stalls = 0

    def batch_complete(self) -> bool:
        return not self.to_send and self.awaiting == 0


class WindowedResult:
    """Aggregate outcome of a windowed run."""

    def __init__(self, total_cycles: int, requests: int, stalls: int,
                 thread_cycles: List[int]):
        self.total_cycles = total_cycles
        self.requests = requests
        self.stalls = stalls
        self.thread_cycles = thread_cycles

    @property
    def max_cycle(self) -> int:
        """Slowest thread's completion time."""
        return max(self.thread_cycles)


class WindowedEngine:
    """Drives batch-yielding programs with up to ``window`` outstanding
    requests per thread.

    Args:
        sim: the simulation context.
        window: maximum batch size (and per-thread tag allocation).
        max_cycles: runaway guard.
    """

    def __init__(self, sim: HMCSim, *, window: int = 8, max_cycles: int = 1_000_000):
        if window < 1:
            raise HMCSimError("window must be >= 1")
        self.sim = sim
        self.window = window
        self.max_cycles = max_cycles
        self.threads: List[_WThread] = []
        self._by_tag: Dict[int, tuple] = {}

    def add_thread(
        self,
        program_fn: Callable[[ThreadCtx], BatchProgram],
        *,
        link: Optional[int] = None,
        cub: int = 0,
    ) -> None:
        """Register a windowed thread (round-robin link assignment)."""
        tid = len(self.threads)
        if (tid + 1) * self.window > 0x800:
            raise HMCSimError(
                f"threads x window exceeds the 11-bit tag space "
                f"({tid + 1} x {self.window} > 2048)"
            )
        if link is None:
            link = tid % self.sim.config.num_links
        ctx = ThreadCtx(self.sim, tid, link, cub)
        self.threads.append(_WThread(tid, ctx, program_fn(ctx)))

    # -- internals ---------------------------------------------------------------

    def _start_batch(self, thread: _WThread, batch: Sequence[RequestPacket]) -> None:
        if len(batch) > self.window:
            raise HMCSimError(
                f"thread {thread.tid} yielded a batch of {len(batch)} "
                f"packets; the window is {self.window}"
            )
        thread.responses = [None] * len(batch)
        thread.awaiting = 0
        thread.to_send = []
        for slot, pkt in enumerate(batch):
            pkt.tag = thread.tid * self.window + slot
            thread.to_send.append((slot, pkt))

    def _advance(self, thread: _WThread, value) -> None:
        try:
            batch = thread.program.send(value)
        except StopIteration:
            thread.done = True
            thread.finish_cycle = self.sim.cycle
            return
        self._start_batch(thread, list(batch))

    def _pump_sends(self, thread: _WThread) -> None:
        still: List[tuple] = []
        for slot, pkt in thread.to_send:
            status = self.sim.send(pkt, dev=thread.ctx.cub, link=thread.ctx.link)
            if status is HMCStatus.STALL:
                thread.stalls += 1
                still.append((slot, pkt))
                continue
            thread.requests += 1
            if self.sim._expects_response(pkt):
                self._by_tag[pkt.tag] = (thread, slot)
                thread.awaiting += 1
        thread.to_send = still

    def run(self) -> WindowedResult:
        """Run every thread to completion.

        Raises:
            HMCSimError: if the workload exceeds ``max_cycles``.
        """
        start = self.sim.cycle
        for thread in self.threads:
            self._advance(thread, None)

        deadline = start + self.max_cycles
        while True:
            live = [t for t in self.threads if not t.done]
            if not live:
                break
            if self.sim.cycle >= deadline:
                stuck = sorted(self._by_tag)
                raise SimDeadlockError(
                    f"windowed workload did not complete within "
                    f"{self.max_cycles} cycles",
                    dump=collect_deadlock_dump(
                        self.sim,
                        extra={
                            f"awaiting slots ({len(stuck)})": " ".join(
                                f"tag{t}" for t in stuck[:32]
                            )
                            or "<none>"
                        },
                    ),
                )
            for thread in live:
                if thread.to_send:
                    self._pump_sends(thread)
                if thread.batch_complete() and not thread.done:
                    self._advance(thread, thread.responses)
                    if thread.to_send:
                        self._pump_sends(thread)
            self.sim.clock()
            for dev in range(self.sim.config.num_devs):
                for link in range(self.sim.config.num_links):
                    while True:
                        rsp = self.sim.recv(dev=dev, link=link)
                        if rsp is None:
                            break
                        entry = self._by_tag.pop(rsp.tag, None)
                        if entry is None:
                            raise HMCSimError(
                                f"response tag {rsp.tag} matches no outstanding slot"
                            )
                        thread, slot = entry
                        thread.responses[slot] = rsp
                        thread.awaiting -= 1

        return WindowedResult(
            total_cycles=self.sim.cycle - start,
            requests=sum(t.requests for t in self.threads),
            stalls=sum(t.stalls for t in self.threads),
            thread_cycles=[
                (t.finish_cycle or start) - start for t in self.threads
            ],
        )
