"""C-compatible functional API with the original HMC-Sim names.

HMC-Sim's established user base drives the paper's *API Compatibility*
requirement (§IV.A).  This module offers the original function-style
entry points — ``hmcsim_init``, ``hmcsim_send``, ``hmcsim_recv``,
``hmcsim_clock``, ``hmcsim_load_cmc``, … — as thin wrappers over
:class:`repro.hmc.sim.HMCSim`, using C-style integer status returns
(``0`` ok, ``HMC_STALL``, ``-1`` error) instead of exceptions wherever
the original API did.

Ports of existing HMC-Sim harnesses can therefore be translated almost
line-for-line; new code should prefer the object API.
"""

from __future__ import annotations

from typing import IO, List, Optional, Tuple, Union

from repro.errors import HMCSimError, HMCStatus
from repro.hmc.commands import hmc_rqst_t
from repro.hmc.config import HMCConfig
from repro.hmc.packet import RequestPacket, ResponsePacket, unpack_data
from repro.hmc.sim import HMCSim
from repro.hmc.trace import TraceLevel

__all__ = [
    "hmcsim_init",
    "hmcsim_free",
    "hmcsim_load_cmc",
    "hmcsim_build_memrequest",
    "hmcsim_send",
    "hmcsim_recv",
    "hmcsim_clock",
    "hmcsim_trace_handle",
    "hmcsim_trace_level",
    "hmcsim_jtag_reg_read",
    "hmcsim_jtag_reg_write",
    "hmcsim_util_set_max_blocksize",
    "hmcsim_util_get_max_blocksize",
    "hmcsim_util_decode_vault",
    "hmcsim_util_decode_bank",
    "hmcsim_util_decode_quad",
    "hmcsim_util_decode_row",
    "hmcsim_util_decode_qv",
    "hmcsim_decode_memresponse",
    "HMC_OK",
    "HMC_STALL",
    "HMC_ERROR",
]

HMC_OK = int(HMCStatus.OK)
HMC_STALL = int(HMCStatus.STALL)
HMC_ERROR = int(HMCStatus.ERROR)


def hmcsim_init(
    num_devs: int,
    num_links: int,
    num_vaults: int,
    queue_depth: int,
    num_banks: int,
    num_drams: int,
    capacity: int,
    xbar_depth: int,
) -> Optional[HMCSim]:
    """Create a simulation context (``hmcsim_init``).

    Returns the context, or None for an illegal configuration —
    mirroring the C API's ``-1`` without raising.
    """
    try:
        config = HMCConfig(
            num_devs=num_devs,
            num_links=num_links,
            num_vaults=num_vaults,
            queue_depth=queue_depth,
            num_banks=num_banks,
            num_drams=num_drams,
            capacity=capacity,
            xbar_depth=xbar_depth,
        )
    except HMCSimError:
        return None
    return HMCSim(config)


def hmcsim_free(hmc: HMCSim) -> int:
    """Release a context (``hmcsim_free``)."""
    try:
        hmc.free()
    except HMCSimError:
        return HMC_ERROR
    return HMC_OK


def hmcsim_util_set_max_blocksize(hmc: HMCSim, bsize: int) -> int:
    """Set the maximum block size (``hmcsim_util_set_max_blocksize``).

    The block size controls the address interleave, so in this
    implementation it rebuilds the context's address map.  Returns
    ``-1`` for unsupported sizes.
    """
    from dataclasses import replace

    from repro.hmc.addrmap import AddressMap

    try:
        new_config = replace(hmc.config, bsize=bsize)
        hmc.config = new_config
        hmc.addrmap = AddressMap(new_config)
    except HMCSimError:
        return HMC_ERROR
    return HMC_OK


def hmcsim_util_get_max_blocksize(hmc: HMCSim) -> int:
    """Read back the configured maximum block size."""
    return hmc.config.bsize


def hmcsim_util_decode_vault(hmc: HMCSim, addr: int) -> int:
    """Vault index of a device-local address (``hmcsim_util_decode_*``)."""
    return hmc.addrmap.vault_of(addr % hmc.config.capacity_bytes)


def hmcsim_util_decode_bank(hmc: HMCSim, addr: int) -> int:
    """Bank index of a device-local address."""
    return hmc.addrmap.bank_of(addr % hmc.config.capacity_bytes)


def hmcsim_util_decode_quad(hmc: HMCSim, addr: int) -> int:
    """Quadrant of a device-local address."""
    return hmc.config.quad_of_vault(hmcsim_util_decode_vault(hmc, addr))


def hmcsim_util_decode_row(hmc: HMCSim, addr: int) -> int:
    """DRAM row of a device-local address."""
    return hmc.addrmap.decode(addr % hmc.config.capacity_bytes).row


def hmcsim_util_decode_qv(hmc: HMCSim, addr: int) -> Tuple[int, int]:
    """(quad, vault) of a device-local address in one call."""
    vault = hmcsim_util_decode_vault(hmc, addr)
    return hmc.config.quad_of_vault(vault), vault


def hmcsim_load_cmc(hmc: HMCSim, cmc_lib: Union[str, object]) -> int:
    """Load a CMC plugin (``hmc_load_cmc``): 0 ok, -1 on any failure."""
    try:
        hmc.load_cmc(cmc_lib)
    except HMCSimError:
        return HMC_ERROR
    return HMC_OK


def hmcsim_build_memrequest(
    hmc: HMCSim,
    dev: int,
    addr: int,
    tag: int,
    rqst: hmc_rqst_t,
    link: int,
    payload: Optional[List[int]] = None,
) -> Optional[Tuple[int, int, List[int]]]:
    """Build a request (``hmcsim_build_memrequest``).

    Args:
        payload: data payload as 64-bit words (HMC-Sim convention), or
            None for commands without data.

    Returns:
        ``(head, tail, packet_words)`` or None on error.  ``dev`` is
        encoded into the packet's CUB field; ``link`` is recorded in
        the tail SLID field at send time.
    """
    try:
        data = unpack_data(payload) if payload else b""
        pkt = hmc.build_memrequest(rqst, addr, tag, cub=dev, data=data)
        words = pkt.encode()
        return words[0], words[-1], words
    except HMCSimError:
        return None


def hmcsim_send(hmc: HMCSim, packet: List[int], dev: int = 0, link: int = 0) -> int:
    """Send an encoded request packet (``hmcsim_send``).

    Returns 0, ``HMC_STALL``, or -1.
    """
    try:
        pkt = RequestPacket.decode(packet, check_crc=hmc.config.check_crc)
        status = hmc.send(pkt, dev=dev, link=link)
    except HMCSimError:
        return HMC_ERROR
    return int(status)


def hmcsim_recv(hmc: HMCSim, dev: int, link: int) -> Optional[List[int]]:
    """Receive one response packet as 64-bit words (``hmcsim_recv``).

    Returns None when no response is ready (the C API's ``HMC_STALL``).
    """
    try:
        rsp = hmc.recv(dev=dev, link=link)
    except HMCSimError:
        return None
    return rsp.encode() if rsp is not None else None


def hmcsim_decode_memresponse(packet: List[int]) -> Optional[ResponsePacket]:
    """Decode a received response packet into its fields."""
    try:
        return ResponsePacket.decode(packet)
    except HMCSimError:
        return None


def hmcsim_clock(hmc: HMCSim) -> int:
    """Advance the context one cycle (``hmcsim_clock``): 0 ok, -1 error."""
    try:
        hmc.clock()
    except HMCSimError:
        return HMC_ERROR
    return HMC_OK


def hmcsim_trace_handle(hmc: HMCSim, handle: Optional[IO[str]]) -> int:
    """Attach a trace stream (``hmcsim_trace_handle``)."""
    hmc.trace_handle(handle)
    return HMC_OK


def hmcsim_trace_level(hmc: HMCSim, level: int) -> int:
    """Set trace categories (``hmcsim_trace_level``)."""
    hmc.trace_level(TraceLevel(level))
    return HMC_OK


def hmcsim_jtag_reg_read(hmc: HMCSim, dev: int, reg: int) -> Optional[int]:
    """JTAG register read; None on error (C API returns -1)."""
    try:
        return hmc.jtag_reg_read(dev, reg)
    except HMCSimError:
        return None


def hmcsim_jtag_reg_write(hmc: HMCSim, dev: int, reg: int, value: int) -> int:
    """JTAG register write: 0 ok, -1 error."""
    try:
        hmc.jtag_reg_write(dev, reg, value)
    except HMCSimError:
        return HMC_ERROR
    return HMC_OK
